#include "serve/protocol.h"

#include <algorithm>
#include <cstring>

#include "support/strutil.h"

namespace essent::serve {

namespace {

// SHA-256 (FIPS 180-4), self-contained. The design cache is shared across
// untrusted connections, so its content address must be collision-resistant
// against adversarial inputs — FNV-style mixing is trivially collidable.
struct Sha256 {
  uint32_t h[8] = {0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
                   0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u};
  unsigned char buf[64];
  uint64_t total = 0;
  size_t fill = 0;

  static uint32_t rotr(uint32_t x, unsigned n) { return (x >> n) | (x << (32 - n)); }

  void block(const unsigned char* p) {
    static constexpr uint32_t K[64] = {
        0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu, 0x59f111f1u,
        0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u, 0x243185beu, 0x550c7dc3u,
        0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u, 0xc19bf174u, 0xe49b69c1u, 0xefbe4786u,
        0x0fc19dc6u, 0x240ca1ccu, 0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau,
        0x983e5152u, 0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
        0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu, 0x53380d13u,
        0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u, 0xa2bfe8a1u, 0xa81a664bu,
        0xc24b8b70u, 0xc76c51a3u, 0xd192e819u, 0xd6990624u, 0xf40e3585u, 0x106aa070u,
        0x19a4c116u, 0x1e376c08u, 0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au,
        0x5b9cca4fu, 0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
        0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u};
    uint32_t w[64];
    for (int i = 0; i < 16; i++)
      w[i] = (static_cast<uint32_t>(p[4 * i]) << 24) |
             (static_cast<uint32_t>(p[4 * i + 1]) << 16) |
             (static_cast<uint32_t>(p[4 * i + 2]) << 8) | static_cast<uint32_t>(p[4 * i + 3]);
    for (int i = 16; i < 64; i++) {
      uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    uint32_t a = h[0], b = h[1], c = h[2], d = h[3];
    uint32_t e = h[4], f = h[5], g = h[6], hh = h[7];
    for (int i = 0; i < 64; i++) {
      uint32_t S1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      uint32_t ch = (e & f) ^ (~e & g);
      uint32_t t1 = hh + S1 + ch + K[i] + w[i];
      uint32_t S0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      uint32_t t2 = S0 + maj;
      hh = g; g = f; f = e; e = d + t1;
      d = c; c = b; b = a; a = t1 + t2;
    }
    h[0] += a; h[1] += b; h[2] += c; h[3] += d;
    h[4] += e; h[5] += f; h[6] += g; h[7] += hh;
  }

  void update(const void* data, size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    total += n;
    while (n > 0) {
      size_t take = std::min(n, sizeof(buf) - fill);
      std::memcpy(buf + fill, p, take);
      fill += take;
      p += take;
      n -= take;
      if (fill == sizeof(buf)) {
        block(buf);
        fill = 0;
      }
    }
  }

  void finish(unsigned char out[32]) {
    uint64_t bits = total * 8;
    unsigned char pad = 0x80;
    update(&pad, 1);
    unsigned char zero = 0;
    while (fill != 56) update(&zero, 1);
    unsigned char len[8];
    for (int i = 0; i < 8; i++) len[i] = static_cast<unsigned char>(bits >> (56 - 8 * i));
    update(len, 8);
    for (int i = 0; i < 8; i++) {
      out[4 * i] = static_cast<unsigned char>(h[i] >> 24);
      out[4 * i + 1] = static_cast<unsigned char>(h[i] >> 16);
      out[4 * i + 2] = static_cast<unsigned char>(h[i] >> 8);
      out[4 * i + 3] = static_cast<unsigned char>(h[i]);
    }
  }
};

bool isUIntNumber(const obs::Json& j) {
  if (!j.isNumber()) return false;
  if (j.kind() == obs::Json::Kind::Double) return false;  // exactness matters
  return j.kind() != obs::Json::Kind::Int || j.asInt() >= 0;
}

}  // namespace

const char* requestOpName(RequestOp op) {
  switch (op) {
    case RequestOp::Ping: return "ping";
    case RequestOp::Compile: return "compile";
    case RequestOp::Run: return "run";
    case RequestOp::Status: return "status";
    case RequestOp::Evict: return "evict";
    case RequestOp::Shutdown: return "shutdown";
  }
  return "?";
}

std::string RequestOptions::cacheKey() const {
  return strfmt("cp=%u;baseline=%d", cp, baseline ? 1 : 0);
}

std::string designHash(const std::string& firrtlText, const RequestOptions& opts) {
  // Length-prefix the text so (text, key) pairs cannot collide by shifting
  // bytes across the boundary.
  std::string key = opts.cacheKey();
  std::string prefix = strfmt("%zu:", firrtlText.size());
  Sha256 sha;
  sha.update(prefix.data(), prefix.size());
  sha.update(firrtlText.data(), firrtlText.size());
  sha.update(key.data(), key.size());
  unsigned char digest[32];
  sha.finish(digest);
  std::string out;
  out.reserve(32);
  for (int i = 0; i < 16; i++) out += strfmt("%02x", digest[i]);
  return out;
}

std::optional<Request> parseRequest(const obs::Json& doc, std::string& code,
                                    std::string& message) {
  code = kErrBadRequest;
  if (!doc.isObject()) {
    message = "request must be a JSON object";
    return std::nullopt;
  }
  Request r;
  bool sawOp = false;
  bool sawProto = false;
  for (const auto& [key, value] : doc.members()) {
    if (key == "proto") {
      if (!isUIntNumber(value)) {
        message = strfmt("'proto' must be an integer (supported protocol versions: %u..%u)",
                         kProtoMin, kProtoMax);
        return std::nullopt;
      }
      uint64_t v = value.asUInt();
      if (v < kProtoMin || v > kProtoMax) {
        message = strfmt("unsupported protocol version %llu (supported: %u..%u)",
                         static_cast<unsigned long long>(v), kProtoMin, kProtoMax);
        return std::nullopt;
      }
      r.proto = static_cast<uint32_t>(v);
      sawProto = true;
    } else if (key == "op") {
      if (!value.isString()) {
        message = "'op' must be a string";
        return std::nullopt;
      }
      const std::string& op = value.asStr();
      if (op == "ping") r.op = RequestOp::Ping;
      else if (op == "compile") r.op = RequestOp::Compile;
      else if (op == "run") r.op = RequestOp::Run;
      else if (op == "status") r.op = RequestOp::Status;
      else if (op == "evict") r.op = RequestOp::Evict;
      else if (op == "shutdown") r.op = RequestOp::Shutdown;
      else {
        message = "unknown op '" + op + "'";
        return std::nullopt;
      }
      sawOp = true;
    } else if (key == "design") {
      if (!value.isString()) {
        message = "'design' must be a string of FIRRTL source";
        return std::nullopt;
      }
      r.designText = value.asStr();
    } else if (key == "design_hash") {
      if (!value.isString()) {
        message = "'design_hash' must be a hex string";
        return std::nullopt;
      }
      r.designHash = value.asStr();
    } else if (key == "cycles") {
      if (!isUIntNumber(value)) {
        message = "'cycles' must be a non-negative integer";
        return std::nullopt;
      }
      r.cycles = value.asUInt();
    } else if (key == "batch") {
      if (!isUIntNumber(value)) {
        message = "'batch' must be a non-negative integer";
        return std::nullopt;
      }
      uint64_t b = value.asUInt();
      if (b > 4096) {
        message = "'batch' beyond the supported maximum (4096)";
        return std::nullopt;
      }
      r.batch = static_cast<uint32_t>(b);
    } else if (key == "sleep_ms") {
      if (!isUIntNumber(value)) {
        message = "'sleep_ms' must be a non-negative integer";
        return std::nullopt;
      }
      r.sleepMs = value.asUInt();
    } else if (key == "pokes") {
      if (!value.isObject()) {
        message = "'pokes' must be an object of name -> integer";
        return std::nullopt;
      }
      for (const auto& [name, v] : value.members()) {
        if (!isUIntNumber(v)) {
          message = "poke '" + name + "' must be a non-negative integer";
          return std::nullopt;
        }
        r.pokes[name] = v.asUInt();
      }
    } else if (key == "options") {
      if (!value.isObject()) {
        message = "'options' must be an object";
        return std::nullopt;
      }
      for (const auto& [name, v] : value.members()) {
        if (name == "cp") {
          if (!isUIntNumber(v) || v.asUInt() == 0 || v.asUInt() > 1u << 20) {
            message = "options.cp must be a positive integer";
            return std::nullopt;
          }
          r.options.cp = static_cast<uint32_t>(v.asUInt());
        } else if (name == "baseline") {
          if (v.kind() != obs::Json::Kind::Bool) {
            message = "options.baseline must be a boolean";
            return std::nullopt;
          }
          r.options.baseline = v.asBool();
        } else if (name == "engine") {
          if (!v.isString() || !sim::parseEngineKind(v.asStr(), r.options.kind) ||
              r.options.kind == sim::EngineKind::Codegen) {
            message = "options.engine must be one of full|event|ccss|par|lane";
            return std::nullopt;
          }
        } else if (name == "threads") {
          if (!isUIntNumber(v) || v.asUInt() > 256) {
            message = "options.threads must be an integer in [0, 256]";
            return std::nullopt;
          }
          r.options.threads = static_cast<unsigned>(v.asUInt());
        } else if (name == "lanes") {
          if (!isUIntNumber(v) || v.asUInt() > 64) {
            message = "options.lanes must be an integer in [0, 64]";
            return std::nullopt;
          }
          r.options.lanes = static_cast<unsigned>(v.asUInt());
        } else {
          message = "unknown options field '" + name + "'";
          return std::nullopt;
        }
      }
    } else {
      message = "unknown request field '" + key + "'";
      return std::nullopt;
    }
  }
  if (!sawProto) {
    message = strfmt("missing required field 'proto' (supported protocol versions: %u..%u)",
                     kProtoMin, kProtoMax);
    return std::nullopt;
  }
  if (!sawOp) {
    message = "missing required field 'op'";
    return std::nullopt;
  }
  // Op-specific requirements, checked here so handlers can assume them.
  if (r.op == RequestOp::Compile && r.designText.empty()) {
    message = "'compile' requires 'design' (FIRRTL source text)";
    return std::nullopt;
  }
  if (r.op == RequestOp::Run && r.designText.empty() && r.designHash.empty()) {
    message = "'run' requires 'design' or 'design_hash'";
    return std::nullopt;
  }
  if (r.op == RequestOp::Run && r.cycles == 0) {
    message = "'run' requires a positive 'cycles'";
    return std::nullopt;
  }
  if (r.op == RequestOp::Evict && r.designHash.empty()) {
    message = "'evict' requires 'design_hash'";
    return std::nullopt;
  }
  code.clear();
  message.clear();
  return r;
}

obs::Json okResponse(RequestOp op) {
  obs::Json doc = obs::Json::object();
  doc["ok"] = true;
  doc["proto"] = uint64_t{kProtoMax};
  doc["op"] = requestOpName(op);
  return doc;
}

obs::Json errorResponse(const std::string& code, const std::string& message,
                        int64_t retryAfterMs) {
  obs::Json err = obs::Json::object();
  err["code"] = code;
  err["message"] = message;
  if (retryAfterMs >= 0) err["retry_after_ms"] = retryAfterMs;
  obs::Json doc = obs::Json::object();
  doc["ok"] = false;
  doc["proto"] = uint64_t{kProtoMax};
  doc["error"] = std::move(err);
  return doc;
}

std::optional<ResponseEnvelope> parseResponseEnvelope(const obs::Json& doc) {
  if (!doc.isObject()) return std::nullopt;
  const obs::Json* ok = doc.find("ok");
  if (!ok || ok->kind() != obs::Json::Kind::Bool) return std::nullopt;
  ResponseEnvelope env;
  env.ok = ok->asBool();
  if (env.ok) return env;
  const obs::Json* err = doc.find("error");
  if (!err || !err->isObject()) return std::nullopt;
  const obs::Json* code = err->find("code");
  if (!code || !code->isString() || code->asStr().size() != 5 || code->asStr()[0] != 'E')
    return std::nullopt;
  env.errorCode = code->asStr();
  if (const obs::Json* msg = err->find("message"); msg && msg->isString())
    env.errorMessage = msg->asStr();
  if (const obs::Json* retry = err->find("retry_after_ms"); retry && retry->isNumber())
    env.retryAfterMs = retry->asInt();
  return env;
}

}  // namespace essent::serve
