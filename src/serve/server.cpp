#include "serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "core/activity_engine.h"
#include "core/sim_farm.h"
#include "diag/diag.h"
#include "obs/metrics.h"
#include "sim/compile.h"
#include "sim/engine_factory.h"
#include "support/strutil.h"

namespace essent::serve {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t elapsedNs(Clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0).count());
}

// SplitMix64 step: the per-connection chaos schedule. Deterministic for a
// given (seed, connection id), so a pinned-seed campaign replays exactly.
uint64_t nextRand(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double unitRand(uint64_t& state) {
  return static_cast<double>(nextRand(state) >> 11) * 0x1.0p-53;
}

// Compile failure carrying the front end's structured diagnostics, thrown
// out of the cache's compile function and rendered as E0605.
struct DesignRejected : std::runtime_error {
  explicit DesignRejected(obs::Json d)
      : std::runtime_error("design rejected with diagnostics"), diagnostics(std::move(d)) {}
  obs::Json diagnostics;
};

// A request carried both design text and a design_hash that is not the
// content address of that text — a broken client or a cache-poisoning
// attempt. Rendered as E0604 by the handlers.
struct HashMismatch : std::runtime_error {
  HashMismatch(std::string supplied_, std::string computed_)
      : std::runtime_error("design_hash does not match the supplied design"),
        supplied(std::move(supplied_)),
        computed(std::move(computed_)) {}
  std::string supplied;
  std::string computed;
};

}  // namespace

obs::Json ServerStats::toJson() const {
  obs::Json doc = obs::Json::object();
  doc["connections_accepted"] = connectionsAccepted;
  doc["connections_shed"] = connectionsSheded;
  doc["connections_drained"] = connectionsDrained;
  doc["requests_served"] = requestsServed;
  doc["requests_failed"] = requestsFailed;
  doc["framing_errors"] = framingErrors;
  doc["chaos_injected"] = chaosInjected;
  doc["queue_depth_peak"] = queueDepthPeak;
  doc["cache"] = cache.toJson();
  return doc;
}

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)), cache_(opts_.cacheCapacity) {}

Server::~Server() {
  if (started_.load(std::memory_order_acquire)) {
    requestDrain();
    waitDrained();
  }
  if (drainPipe_[0] >= 0) ::close(drainPipe_[0]);
  if (drainPipe_[1] >= 0) ::close(drainPipe_[1]);
}

void Server::start() {
  if (opts_.unixPath.empty() && opts_.tcpPort < 0)
    throw std::runtime_error("essentd: no listener configured (need a unix path or TCP port)");
  if (!opts_.unixPath.empty()) unixListener_ = support::listenUnix(opts_.unixPath);
  if (opts_.tcpPort >= 0) {
    tcpListener_ = support::listenTcp(static_cast<uint16_t>(opts_.tcpPort));
    tcpPort_ = support::boundPort(tcpListener_);
  }
  if (::pipe(drainPipe_) != 0)
    throw std::runtime_error("essentd: cannot create drain pipe");
  opts_.workers = std::max(1u, opts_.workers);
  opts_.queueCapacity = std::max<size_t>(1, opts_.queueCapacity);
  started_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { acceptLoop(); });
  for (unsigned w = 0; w < opts_.workers; w++)
    workers_.emplace_back([this, w] { workerLoop(w); });
}

void Server::requestDrain() {
  draining_.store(true, std::memory_order_release);
  // Async-signal-safe wake-up for the acceptor; the byte's value is
  // irrelevant and a full pipe (EAGAIN) still leaves draining_ set.
  if (drainPipe_[1] >= 0) {
    char b = 1;
    [[maybe_unused]] ssize_t r = ::write(drainPipe_[1], &b, 1);
  }
}

void Server::waitDrained() {
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard<std::mutex> lock(queueMu_);
    queueClosed_ = true;
  }
  queueCv_.notify_all();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(statsMu_);
  ServerStats s = stats_;
  s.cache = cache_.stats();
  return s;
}

void Server::bumpStat(uint64_t ServerStats::* field, uint64_t n) {
  std::lock_guard<std::mutex> lock(statsMu_);
  stats_.*field += n;
}

void Server::acceptLoop() {
  obs::MetricCounter& rejects =
      obs::MetricsRegistry::global().counter("serve.admission_rejects");
  obs::MetricGauge& depth = obs::MetricsRegistry::global().gauge("serve.queue_depth");
  std::vector<pollfd> fds;
  if (unixListener_.valid()) fds.push_back({unixListener_.fd(), POLLIN, 0});
  if (tcpListener_.valid()) fds.push_back({tcpListener_.fd(), POLLIN, 0});
  fds.push_back({drainPipe_[0], POLLIN, 0});

  while (!draining()) {
    for (pollfd& p : fds) p.revents = 0;
    int pr = ::poll(fds.data(), fds.size(), 500);
    if (pr < 0) continue;  // EINTR and friends: re-check draining
    for (const pollfd& p : fds) {
      if (!(p.revents & POLLIN) || p.fd == drainPipe_[0]) continue;
      support::Socket conn =
          support::acceptOn(p.fd == unixListener_.fd() ? unixListener_ : tcpListener_);
      if (!conn.valid()) continue;
      // Door writes (shed/drain frames) are best-effort: a ~50ms send
      // budget so a peer with a stuffed receive window cannot head-of-line
      // block the single acceptor — exactly the overload condition that
      // triggers shedding. Workers raise the budget before serving.
      timeval doorTv{0, 50'000};
      ::setsockopt(conn.fd(), SOL_SOCKET, SO_SNDTIMEO, &doorTv, sizeof(doorTv));
      bumpStat(&ServerStats::connectionsAccepted);
      if (draining()) {
        support::writeFrame(
            conn.fd(),
            errorResponse(kErrDraining, "server is draining; connection refused",
                          opts_.retryAfterMs)
                .dump(0));
        bumpStat(&ServerStats::connectionsDrained);
        continue;
      }
      bool admitted = false;
      size_t depthNow = 0;
      {
        std::lock_guard<std::mutex> lock(queueMu_);
        if (queue_.size() < opts_.queueCapacity && !queueClosed_) {
          queue_.push_back(conn.release());
          depthNow = queue_.size();
          admitted = true;
        }
      }
      if (admitted) {
        depth.set(static_cast<double>(depthNow));
        {
          std::lock_guard<std::mutex> lock(statsMu_);
          stats_.queueDepthPeak = std::max<uint64_t>(stats_.queueDepthPeak, depthNow);
        }
        queueCv_.notify_one();
      } else {
        // Bounded-queue backpressure: shed the connection with a structured
        // retry hint instead of queueing without limit.
        rejects.add(1);
        bumpStat(&ServerStats::connectionsSheded);
        support::writeFrame(
            conn.fd(),
            errorResponse(kErrOverloaded, "server overloaded; retry after backoff",
                          opts_.retryAfterMs)
                .dump(0));
      }
    }
  }
}

void Server::workerLoop(unsigned) {
  obs::MetricGauge& depth = obs::MetricsRegistry::global().gauge("serve.queue_depth");
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queueMu_);
      queueCv_.wait(lock, [&] { return !queue_.empty() || queueClosed_; });
      if (queue_.empty()) return;  // closed and drained
      fd = queue_.front();
      queue_.pop_front();
      depth.set(static_cast<double>(queue_.size()));
    }
    support::Socket conn(fd);
    // A stuck peer must not wedge this worker in send(): bound every
    // response write (the acceptor left only the tiny door budget).
    timeval tv{5, 0};
    ::setsockopt(conn.fd(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    if (draining()) {
      // Admitted before the drain began but never served: answer with the
      // structured drain error rather than a silent close.
      support::writeFrame(conn.fd(),
                          errorResponse(kErrDraining, "server is draining", opts_.retryAfterMs)
                              .dump(0));
      bumpStat(&ServerStats::connectionsDrained);
      continue;
    }
    serveConnection(std::move(conn), connSeq_.fetch_add(1, std::memory_order_relaxed));
  }
}

void Server::serveConnection(support::Socket conn, uint64_t connId) {
  uint64_t chaosState = opts_.chaos.seed ^ (connId * 0x9e3779b97f4a7c15ULL);
  while (conn.valid()) {
    if (draining()) {
      // Between requests at drain time: the current request (if any) already
      // finished; refuse further ones and close.
      support::writeFrame(conn.fd(),
                          errorResponse(kErrDraining, "server is draining", opts_.retryAfterMs)
                              .dump(0));
      bumpStat(&ServerStats::connectionsDrained);
      return;
    }
    if (!serveOneFrame(conn, chaosState)) return;
  }
}

Server::ChaosPlan Server::chaosDecide(uint64_t& state) {
  ChaosPlan plan;
  if (!opts_.chaos.enabled) return plan;
  plan.slowRead = unitRand(state) < opts_.chaos.slowReadProb;
  plan.drop = unitRand(state) < opts_.chaos.dropProb;
  plan.disconnect = unitRand(state) < opts_.chaos.disconnectProb;
  plan.fail = unitRand(state) < opts_.chaos.failProb;
  if (plan.slowRead || plan.drop || plan.disconnect || plan.fail) {
    bumpStat(&ServerStats::chaosInjected);
    obs::MetricsRegistry::global().counter("serve.chaos_injected").add(1);
  }
  return plan;
}

bool Server::writeResponse(support::Socket& conn, const obs::Json& doc,
                           const ChaosPlan& plan) {
  std::string payload = doc.dump(0);
  if (plan.disconnect) {
    // Chaos: leave the peer with a torn response — header plus half the
    // payload — then close. Clients must treat this as a transport error.
    uint32_t len = static_cast<uint32_t>(payload.size());
    unsigned char hdr[4] = {static_cast<unsigned char>(len >> 24),
                            static_cast<unsigned char>(len >> 16),
                            static_cast<unsigned char>(len >> 8),
                            static_cast<unsigned char>(len)};
    support::sendAll(conn.fd(), hdr, sizeof(hdr));
    support::sendAll(conn.fd(), payload.data(), payload.size() / 2);
    return false;
  }
  return support::writeFrame(conn.fd(), payload);
}

bool Server::serveOneFrame(support::Socket& conn, uint64_t& chaosState) {
  ChaosPlan plan = chaosDecide(chaosState);
  if (plan.slowRead && opts_.chaos.slowMs > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(opts_.chaos.slowMs));

  std::string payload;
  uint64_t declared = 0;
  support::FrameStatus st = support::readFrame(conn.fd(), payload, opts_.maxFrameBytes,
                                               opts_.idleReadTimeoutMs, &declared);
  switch (st) {
    case support::FrameStatus::Ok:
      break;
    case support::FrameStatus::Eof:
      return false;  // clean close between frames
    case support::FrameStatus::Truncated:
    case support::FrameStatus::TimedOut:
      bumpStat(&ServerStats::framingErrors);
      writeResponse(conn,
                    errorResponse(kErrMalformedFrame,
                                  std::string("malformed frame (") + frameStatusName(st) +
                                      "); framing lost, closing connection"),
                    plan);
      return false;  // the stream is unsynchronized; nothing more to parse
    case support::FrameStatus::Oversized:
      bumpStat(&ServerStats::framingErrors);
      writeResponse(conn,
                    errorResponse(kErrFrameTooLarge,
                                  strfmt("frame of %llu bytes exceeds the %llu byte ceiling",
                                         static_cast<unsigned long long>(declared),
                                         static_cast<unsigned long long>(opts_.maxFrameBytes))),
                    plan);
      return false;  // payload was never drained: stream unusable
    case support::FrameStatus::IoError:
      return false;
  }

  if (plan.drop) return false;  // chaos: request swallowed, no response

  Clock::time_point t0 = Clock::now();
  obs::Json response;
  if (plan.fail) {
    response = errorResponse(kErrInjectedFault, "chaos-injected failure");
  } else {
    try {
      obs::Json doc = obs::Json::parse(payload);
      std::string code, message;
      std::optional<Request> req = parseRequest(doc, code, message);
      if (!req) {
        bumpStat(&ServerStats::framingErrors);
        response = errorResponse(code, message);
      } else {
        response = handleRequest(*req);
        if (req->op == RequestOp::Shutdown && opts_.allowRemoteShutdown) {
          writeResponse(conn, response, plan);
          bumpStat(&ServerStats::requestsServed);
          requestDrain();
          return false;
        }
      }
    } catch (const obs::JsonError& e) {
      bumpStat(&ServerStats::framingErrors);
      response = errorResponse(kErrBadJson, e.what());
    } catch (const DesignRejected& e) {
      response = errorResponse(kErrDesignRejected, "design rejected by the front end");
      response["error"]["diagnostics"] = e.diagnostics;
    } catch (const support::ResourceExhausted& e) {
      bool deadline = e.code() == "E0504";
      response = errorResponse(deadline ? kErrDeadline : kErrResourceLimit,
                               e.code() + std::string(": ") + e.what());
    } catch (const std::exception& e) {
      // The per-request exception wall: anything an engine, cache, or
      // handler throws becomes a structured wire error, never a dead worker.
      response = errorResponse(kErrSimFailed, e.what());
    }
  }

  obs::MetricsRegistry::global().histogram("serve.request_ns").record(elapsedNs(t0));
  obs::MetricsRegistry::global().counter("serve.requests").add(1);
  bumpStat(&ServerStats::requestsServed);
  if (const obs::Json* ok = response.find("ok"); ok && !ok->asBool()) {
    bumpStat(&ServerStats::requestsFailed);
    obs::MetricsRegistry::global().counter("serve.errors").add(1);
  }
  return writeResponse(conn, response, plan);
}

obs::Json Server::handleRequest(const Request& req) {
  switch (req.op) {
    case RequestOp::Ping: {
      if (req.sleepMs > 0 && opts_.enableTestHooks) {
        // Test hook for occupancy/backpressure tests: hold this worker, but
        // stay responsive to drain and bounded by the request deadline.
        int64_t budget = static_cast<int64_t>(req.sleepMs);
        if (opts_.requestDeadlineMs > 0) budget = std::min(budget, opts_.requestDeadlineMs);
        Clock::time_point until = Clock::now() + std::chrono::milliseconds(budget);
        while (Clock::now() < until && !draining())
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      return okResponse(RequestOp::Ping);
    }
    case RequestOp::Compile:
      return handleCompile(req);
    case RequestOp::Run:
      return handleRun(req);
    case RequestOp::Status:
      return handleStatus(req);
    case RequestOp::Evict: {
      obs::Json doc = okResponse(RequestOp::Evict);
      doc["evicted"] = cache_.evict(req.designHash);
      return doc;
    }
    case RequestOp::Shutdown: {
      if (!opts_.allowRemoteShutdown)
        return errorResponse(kErrBadRequest, "remote shutdown is disabled on this server");
      obs::Json doc = okResponse(RequestOp::Shutdown);
      doc["draining"] = true;
      return doc;  // caller triggers the drain after writing this
    }
  }
  return errorResponse(kErrBadRequest, "unhandled op");
}

// Shared by compile and run: resolve (text, options) -> CompiledDesign via
// the content-addressed cache, enforcing the per-request elaboration
// ceilings. Throws DesignRejected / ResourceExhausted on failure.
static DesignCache::Result resolveDesign(DesignCache& cache, const ServerOptions& sopts,
                                         const Request& req) {
  if (req.designText.empty()) {
    std::shared_ptr<const sim::CompiledDesign> d = cache.lookup(req.designHash);
    if (!d)
      throw std::invalid_argument("");  // mapped to E0611 by the caller
    return {std::move(d), req.designHash, true};
  }
  // The cache key is ALWAYS the server-computed content address of the
  // supplied text. A client hash is only ever verified, never trusted —
  // trusting it would let one client cache arbitrary FIRRTL under a key
  // other clients' designs legitimately hash to (cache poisoning).
  std::string hash = designHash(req.designText, req.options);
  if (!req.designHash.empty() && req.designHash != hash)
    throw HashMismatch(req.designHash, hash);
  Clock::time_point t0 = Clock::now();
  DesignCache::Result res = cache.getOrCompile(
      hash, req.designText,
      [&](const std::string& text) -> std::shared_ptr<const sim::CompiledDesign> {
        diag::DiagEngine de;
        de.setSource("<request>", text);
        sim::CompileOptions copts;
        if (req.options.baseline)
          copts.build.constProp = copts.build.cse = copts.build.dce = false;
        copts.limits = sopts.limits;
        auto design = sim::compileDesign(text, copts, de);
        if (!design) throw DesignRejected(de.toJson());
        return design;
      });
  if (!res.cached)
    obs::MetricsRegistry::global().histogram("serve.compile_ns").record(elapsedNs(t0));
  obs::MetricsRegistry::global()
      .counter(res.cached ? "serve.cache_hits" : "serve.cache_misses")
      .add(1);
  return res;
}

obs::Json Server::handleCompile(const Request& req) {
  try {
    DesignCache::Result res = resolveDesign(cache_, opts_, req);
    obs::Json doc = okResponse(RequestOp::Compile);
    doc["design_hash"] = res.hash;
    doc["cached"] = res.cached;
    doc["design"] = obs::Json::object();
    doc["design"]["name"] = res.design->ir.name;
    doc["design"]["ir_ops"] = static_cast<uint64_t>(res.design->ir.ops.size());
    doc["design"]["registers"] = static_cast<uint64_t>(res.design->ir.regs.size());
    doc["design"]["memories"] = static_cast<uint64_t>(res.design->ir.mems.size());
    return doc;
  } catch (const HashMismatch& e) {
    return errorResponse(kErrBadRequest, "design_hash '" + e.supplied +
                                             "' is not the content address of the supplied "
                                             "design (computed '" + e.computed + "')");
  } catch (const std::invalid_argument&) {
    return errorResponse(kErrUnknownDesign, "design_hash not present in the cache");
  }
}

obs::Json Server::handleRun(const Request& req) {
  DesignCache::Result res;
  try {
    res = resolveDesign(cache_, opts_, req);
  } catch (const HashMismatch& e) {
    return errorResponse(kErrBadRequest, "design_hash '" + e.supplied +
                                             "' is not the content address of the supplied "
                                             "design (computed '" + e.computed + "')");
  } catch (const std::invalid_argument&) {
    return errorResponse(kErrUnknownDesign,
                         "design_hash not present in the cache; resend with 'design' text");
  }

  // Cycle admission: the whole request (batch included) pays against one
  // server-side ceiling, so a single request cannot monopolize a worker.
  uint64_t totalCycles = req.cycles;
  uint32_t instances = std::max(1u, req.batch);
  if (req.cycles != 0 && instances > UINT64_MAX / req.cycles) totalCycles = UINT64_MAX;
  else totalCycles = req.cycles * instances;
  if (opts_.maxCyclesPerRequest && totalCycles > opts_.maxCyclesPerRequest)
    return errorResponse(
        kErrResourceLimit,
        strfmt("E0503: request asks for %llu cycles (server ceiling %llu)",
               static_cast<unsigned long long>(totalCycles),
               static_cast<unsigned long long>(opts_.maxCyclesPerRequest)));

  // The per-request survival envelope: wall-clock deadline + state ceilings,
  // checked inside the simulation loop (and inside every farm instance).
  support::ResourceLimits lim = opts_.limits;
  lim.wallDeadlineMs = opts_.requestDeadlineMs;
  support::ResourceGuard guard(lim);
  // Admit against PEAK engine-state residency, not one instance: a batch
  // keeps one live engine per farm worker (instances beyond that run
  // sequentially on freed slots), so the ceiling scales with the smaller
  // of the batch size and the worker count.
  uint64_t stateBytes = sim::estimateStateBytes(res.design->ir);
  uint64_t liveEngines =
      req.batch == 0 ? 1
                     : std::min<uint64_t>(req.batch, std::max(1u, opts_.farmWorkers));
  guard.checkSimMem(stateBytes > UINT64_MAX / liveEngines ? UINT64_MAX
                                                          : stateBytes * liveEngines);

  sim::EngineOptions eo;
  eo.threads = req.options.threads;
  eo.partitionSmallThreshold = req.options.cp;
  if (req.options.lanes > 0) eo.lanes = req.options.lanes;
  std::vector<std::string> warnings;
  eo.warnings = &warnings;
  sim::EngineKind kind = req.options.kind;
  if (kind == sim::EngineKind::Ccss && req.options.threads > 1) kind = sim::EngineKind::CcssPar;

  Clock::time_point t0 = Clock::now();
  obs::Json doc = okResponse(RequestOp::Run);
  doc["design_hash"] = res.hash;
  doc["cached"] = res.cached;

  if (req.batch == 0) {
    std::unique_ptr<sim::Engine> eng = sim::makeEngine(kind, res.design, eo);
    try {
      for (const auto& [name, value] : req.pokes) eng->poke(name, value);
    } catch (const std::out_of_range&) {
      return errorResponse(kErrBadRequest, "pokes name an unknown input signal");
    }
    uint64_t c = 0;
    for (; c < req.cycles && !eng->stopped(); c++) {
      eng->tick();
      if ((c & 255) == 255) guard.checkDeadline();
    }
    doc["cycles"] = c;
    doc["stopped"] = eng->stopped();
    doc["exit_code"] = eng->exitCode();
    obs::Json outputs = obs::Json::object();
    for (int32_t o : res.design->ir.outputs)
      outputs[res.design->ir.signals[static_cast<size_t>(o)].name] =
          eng->peekSigBV(o).toHexString();
    doc["outputs"] = std::move(outputs);
    if (!eng->printOutput().empty()) doc["print_output"] = eng->printOutput();
    if (auto* act = dynamic_cast<const core::ActivityEngine*>(eng.get()))
      doc["effective_activity"] = act->effectiveActivity();
  } else {
    core::FarmOptions fo;
    fo.kind = kind;
    fo.engine = eo;
    fo.engine.warnings = nullptr;
    fo.workers = opts_.farmWorkers;
    fo.guard = &guard;  // shared wall budget across every instance
    std::vector<core::FarmJob> jobs(req.batch);
    for (uint32_t i = 0; i < req.batch; i++) {
      jobs[i].maxCycles = req.cycles;
      jobs[i].init = [&req](sim::Engine& eng) {
        for (const auto& [name, value] : req.pokes) eng.poke(name, value);
      };
    }
    core::SimFarm farm(res.design, fo);
    core::FarmReport report = farm.run(jobs);
    guard.checkDeadline();
    for (const std::string& w : report.warnings) warnings.push_back(w);
    obs::Json farmDoc = obs::Json::object();
    farmDoc["instances"] = static_cast<uint64_t>(report.instances.size());
    farmDoc["workers"] = report.workers;
    farmDoc["total_cycles"] = report.totalCycles;
    farmDoc["wall_seconds"] = report.wallSeconds;
    farmDoc["aggregate_cycles_per_sec"] = report.aggregateCyclesPerSec;
    farmDoc["p50_ns"] = report.instanceLatency.p50Ns;
    farmDoc["p99_ns"] = report.instanceLatency.p99Ns;
    uint64_t failures = 0;
    obs::Json errors = obs::Json::array();
    for (const core::FarmInstanceResult& r : report.instances)
      if (!r.error.empty()) {
        failures++;
        if (errors.size() < 8) errors.push(r.name + ": " + r.error);
      }
    farmDoc["failures"] = failures;
    if (failures) farmDoc["errors"] = std::move(errors);
    doc["farm"] = std::move(farmDoc);
    doc["cycles"] = report.totalCycles;
  }

  doc["elapsed_ms"] =
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                Clock::now() - t0)
                                .count());
  if (!warnings.empty()) {
    obs::Json w = obs::Json::array();
    for (const std::string& s : warnings) w.push(s);
    doc["warnings"] = std::move(w);
  }
  return doc;
}

obs::Json Server::handleStatus(const Request&) {
  obs::Json doc = okResponse(RequestOp::Status);
  doc["draining"] = draining();
  doc["workers"] = opts_.workers;
  doc["queue_capacity"] = static_cast<uint64_t>(opts_.queueCapacity);
  {
    std::lock_guard<std::mutex> lock(queueMu_);
    doc["queue_depth"] = static_cast<uint64_t>(queue_.size());
  }
  doc["stats"] = stats().toJson();
  doc["chaos"] = opts_.chaos.enabled;
  return doc;
}

}  // namespace essent::serve
