#include "serve/design_cache.h"

#include <algorithm>

namespace essent::serve {

obs::Json CacheStats::toJson() const {
  obs::Json doc = obs::Json::object();
  doc["entries"] = static_cast<uint64_t>(entries);
  doc["capacity"] = static_cast<uint64_t>(capacity);
  doc["hits"] = hits;
  doc["misses"] = misses;
  doc["coalesced"] = coalesced;
  doc["evictions"] = evictions;
  return doc;
}

DesignCache::DesignCache(size_t capacity) : capacity_(std::max<size_t>(1, capacity)) {
  stats_.capacity = capacity_;
}

void DesignCache::touchLocked(const std::string& hash, Entry& e) {
  lru_.erase(e.lruPos);
  lru_.push_front(hash);
  e.lruPos = lru_.begin();
}

void DesignCache::evictOverflowLocked() {
  // Only completed entries live in the LRU list, so an in-flight build can
  // never be evicted out from under its waiters.
  while (lru_.size() > capacity_) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    stats_.evictions++;
  }
}

DesignCache::Result DesignCache::getOrCompile(const std::string& hash,
                                              const std::string& firrtlText,
                                              const CompileFn& compileFn) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = entries_.find(hash);
    if (it == entries_.end()) break;
    if (!it->second.building) {
      stats_.hits++;
      touchLocked(hash, it->second);
      return {it->second.design, hash, true};
    }
    // Someone is compiling this key right now: wait for the verdict. The
    // entry disappears on failure, so re-probe from scratch afterwards.
    stats_.coalesced++;
    buildDone_.wait(lock, [&] {
      auto cur = entries_.find(hash);
      return cur == entries_.end() || !cur->second.building;
    });
    auto cur = entries_.find(hash);
    if (cur != entries_.end() && !cur->second.building) {
      touchLocked(hash, cur->second);
      return {cur->second.design, hash, true};
    }
    // The in-flight compile failed; fall through and try it ourselves.
    break;
  }

  // Claim the in-flight slot, compile outside the lock.
  stats_.misses++;
  entries_[hash].building = true;
  lock.unlock();
  std::shared_ptr<const sim::CompiledDesign> design;
  try {
    design = compileFn(firrtlText);
  } catch (...) {
    lock.lock();
    entries_.erase(hash);
    buildDone_.notify_all();
    throw;
  }
  lock.lock();
  Entry& e = entries_[hash];
  e.design = design;
  e.building = false;
  lru_.push_front(hash);
  e.lruPos = lru_.begin();
  evictOverflowLocked();
  buildDone_.notify_all();
  return {design, hash, false};
}

std::shared_ptr<const sim::CompiledDesign> DesignCache::lookup(const std::string& hash) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(hash);
  if (it == entries_.end() || it->second.building) return nullptr;
  stats_.hits++;
  touchLocked(hash, it->second);
  return it->second.design;
}

bool DesignCache::evict(const std::string& hash) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(hash);
  if (it == entries_.end() || it->second.building) return false;
  lru_.erase(it->second.lruPos);
  entries_.erase(it);
  stats_.evictions++;
  return true;
}

CacheStats DesignCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats s = stats_;
  s.entries = lru_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace essent::serve
