// Content-addressed cache of compiled designs: the compile-once/
// simulate-many economics of the service (LightningSimV2's compile-then-
// query model, GEM's one-time synthesis cost — PAPERS.md).
//
// Key  = designHash(firrtl text, compile-relevant options).
// Value = shared immutable sim::CompiledDesign (engine-kind extensions —
// CCSS schedules, event groups — attach lazily via the design's own
// thread-safe extension cache, so they are shared too).
//
// Concurrency contract:
//  * getOrCompile is safe from any number of worker threads;
//  * concurrent requests for the SAME key compile ONCE — later arrivals
//    block on the first compiler's in-flight slot and share its result
//    (or its failure);
//  * compile failures are never cached: a transient rejection does not
//    poison the key.
//
// Eviction is LRU by entry count. Evicting an entry only drops the cache's
// reference — in-flight requests holding the shared_ptr run to completion.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/json.h"
#include "sim/engine.h"

namespace essent::serve {

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;      // compiles performed (including failures)
  uint64_t coalesced = 0;   // waiters that joined an in-flight compile
  uint64_t evictions = 0;
  size_t entries = 0;
  size_t capacity = 0;

  obs::Json toJson() const;
};

class DesignCache {
 public:
  explicit DesignCache(size_t capacity);

  struct Result {
    std::shared_ptr<const sim::CompiledDesign> design;
    std::string hash;
    bool cached = false;  // served from cache (or an in-flight compile)
  };

  // Returns the compiled design for `hash`, compiling `firrtlText` via
  // `compileFn` on a miss. `compileFn` may throw; the exception propagates
  // to every caller waiting on this key and nothing is cached.
  using CompileFn =
      std::function<std::shared_ptr<const sim::CompiledDesign>(const std::string& text)>;
  Result getOrCompile(const std::string& hash, const std::string& firrtlText,
                      const CompileFn& compileFn);

  // Cache-only lookup (run-by-hash requests); null when absent.
  std::shared_ptr<const sim::CompiledDesign> lookup(const std::string& hash);

  // Drops `hash` if present; returns whether it was.
  bool evict(const std::string& hash);

  CacheStats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const sim::CompiledDesign> design;  // null while building
    bool building = false;
    std::list<std::string>::iterator lruPos;  // valid only when !building
  };

  void touchLocked(const std::string& hash, Entry& e);
  void evictOverflowLocked();

  mutable std::mutex mu_;
  std::condition_variable buildDone_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recent
  size_t capacity_;
  CacheStats stats_;
};

}  // namespace essent::serve
