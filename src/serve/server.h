// essentd core: a long-lived simulation service that stays up under
// malformed, hostile, and overload traffic.
//
// Survival layer (the point of this subsystem):
//  * admission control — accepted connections enter a BOUNDED queue; when
//    it is full the acceptor answers E0609 ("overloaded", retry_after_ms)
//    and closes, so load sheds instead of queueing unboundedly;
//  * per-request governance — every request runs under its own
//    support::ResourceGuard (IR-op / sim-mem / cycle ceilings and a
//    wall-clock deadline checked inside the simulation loop), so one
//    degenerate request ends in a structured E0606/E0607, never a wedged
//    worker;
//  * error isolation — each request handler is exception-walled; a
//    poisoned design or engine fault renders as an E06xx response and the
//    worker moves on;
//  * graceful drain — requestDrain() (async-signal-safe: one pipe write)
//    stops the acceptor, answers queued-but-unserved connections with
//    E0610, lets in-flight requests finish under their deadlines, then
//    joins all workers; stats()/metrics stay readable for the final flush;
//  * chaos mode — opt-in seeded fault injection (request drops, slow
//    reads, mid-response disconnects, injected failures) so the failure
//    paths above are exercised deterministically by tests and CI.
//
// Threading model: one acceptor thread (poll over the unix/TCP listeners
// and the drain pipe) + N worker threads popping connections from the
// bounded queue. A worker serves one connection at a time, request by
// request, so `workers` bounds simulation concurrency directly.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "serve/design_cache.h"
#include "serve/protocol.h"
#include "support/resource_guard.h"
#include "support/socket.h"

namespace essent::serve {

// Opt-in fault injection. Probabilities are per-request decisions drawn
// from a seeded per-connection RNG, so a campaign with a pinned seed
// replays the same fault schedule.
struct ChaosOptions {
  bool enabled = false;
  uint64_t seed = 1;
  double dropProb = 0.05;        // close the connection instead of replying
  double slowReadProb = 0.05;    // stall before reading the next frame
  double disconnectProb = 0.05;  // close mid-response (partial frame written)
  double failProb = 0.10;        // answer E0612 instead of handling
  int64_t slowMs = 25;           // stall duration for slow-reads
};

struct ServerOptions {
  std::string unixPath;      // empty = no unix listener
  int tcpPort = -1;          // -1 = no TCP listener; 0 = ephemeral port
  unsigned workers = 2;      // request-serving threads
  size_t queueCapacity = 16; // accepted connections awaiting a worker
  size_t maxFrameBytes = 16u << 20;
  int64_t idleReadTimeoutMs = 30'000;  // per-frame read budget on a connection
  int64_t requestDeadlineMs = 30'000;  // per-request wall budget (0 = off)
  uint64_t maxCyclesPerRequest = 50'000'000;  // 0 = off
  support::ResourceLimits limits;      // per-request IR/mem ceilings
  size_t cacheCapacity = 64;           // CompiledDesign entries
  unsigned farmWorkers = 1;            // SimFarm lanes for batch requests
  int64_t retryAfterMs = 100;          // backpressure hint in E0609
  bool allowRemoteShutdown = false;    // honor {"op": "shutdown"}
  bool enableTestHooks = false;        // honor ping.sleep_ms (tests/bench)
  ChaosOptions chaos;
};

struct ServerStats {
  uint64_t connectionsAccepted = 0;
  uint64_t connectionsSheded = 0;   // E0609 at the door
  uint64_t connectionsDrained = 0;  // E0610 at/after drain
  uint64_t requestsServed = 0;      // responses written (ok or error)
  uint64_t requestsFailed = 0;      // error responses among those
  uint64_t framingErrors = 0;       // E0601/E0602/E0603 replies
  uint64_t chaosInjected = 0;       // chaos decisions taken
  uint64_t queueDepthPeak = 0;
  CacheStats cache;

  obs::Json toJson() const;
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();  // implies requestDrain() + waitDrained()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds listeners and spawns acceptor + workers. Throws std::runtime_error
  // on bind failure (the caller owns turning that into a CLI error).
  void start();

  // Begins graceful shutdown. Async-signal-safe (a single write() to an
  // internal pipe) — call it straight from a SIGTERM handler.
  void requestDrain();

  // Blocks until the acceptor and every worker have exited and all
  // in-flight work is finished or deadline-killed.
  void waitDrained();

  bool draining() const { return draining_.load(std::memory_order_acquire); }
  uint16_t boundTcpPort() const { return tcpPort_; }
  const ServerOptions& options() const { return opts_; }
  ServerStats stats() const;

 private:
  struct ChaosPlan {
    bool drop = false;
    bool slowRead = false;
    bool disconnect = false;
    bool fail = false;
  };

  void acceptLoop();
  void workerLoop(unsigned id);
  // Serves every frame on one connection; returns when the peer closes,
  // a framing error poisons the stream, or drain begins.
  void serveConnection(support::Socket conn, uint64_t connId);
  // One request: parse, dispatch, respond. Returns false when the
  // connection must close (stream desync or chaos disconnect).
  bool serveOneFrame(support::Socket& conn, uint64_t& chaosState);
  obs::Json handleRequest(const Request& req);
  obs::Json handleCompile(const Request& req);
  obs::Json handleRun(const Request& req);
  obs::Json handleStatus(const Request& req);
  bool writeResponse(support::Socket& conn, const obs::Json& doc, const ChaosPlan& plan);
  ChaosPlan chaosDecide(uint64_t& state);
  void bumpStat(uint64_t ServerStats::* field, uint64_t n = 1);

  ServerOptions opts_;
  DesignCache cache_;
  support::Socket unixListener_;
  support::Socket tcpListener_;
  uint16_t tcpPort_ = 0;
  int drainPipe_[2] = {-1, -1};  // [read, write]; write end is signal-safe

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> connSeq_{0};

  // Bounded admission queue. Closed (queueClosed_) at drain; leftover
  // connections are answered E0610 by the drain path.
  std::mutex queueMu_;
  std::condition_variable queueCv_;
  std::deque<int> queue_;  // raw fds (ownership transferred in/out)
  bool queueClosed_ = false;

  mutable std::mutex statsMu_;
  ServerStats stats_;
};

}  // namespace essent::serve
