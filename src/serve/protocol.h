// essentd wire protocol: request/response JSON documents inside
// length-prefixed frames (support/socket.h), plus the E06xx service error
// catalog.
//
// Frame   := uint32 big-endian payload length, then that many bytes of JSON.
// Request := {"proto": 1,
//             "op": "ping"|"compile"|"run"|"status"|"evict"|"shutdown", ...}
// Response:= {"ok": true, "proto": 1, "op": ..., ...}
//          | {"ok": false, "proto": 1, "error": {"code": "E06xx",
//             "message": ..., "retry_after_ms"?: N, "diagnostics"?: [...]}}
//
// Every request must carry "proto", the wire-protocol version it speaks
// (kProtoMin..kProtoMax, currently just 1). A missing or unsupported proto
// is E0604 with a message naming the supported range, so a version-skewed
// client learns exactly what the daemon speaks instead of tripping over an
// arbitrary later schema error. Responses echo the daemon's version.
//
// Parsing is strict: unknown top-level fields, missing required fields, and
// type mismatches are E0604 — hostile or version-skewed clients get a
// structured rejection, never undefined behaviour. The full schema catalog
// lives in docs/DAEMON.md.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "obs/json.h"
#include "sim/engine_factory.h"

namespace essent::serve {

// --- E06xx service error catalog (docs/DIAGNOSTICS.md) -------------------
inline constexpr const char* kErrMalformedFrame = "E0601";  // truncated frame / stream
inline constexpr const char* kErrFrameTooLarge = "E0602";   // length prefix over ceiling
inline constexpr const char* kErrBadJson = "E0603";         // payload not valid JSON
inline constexpr const char* kErrBadRequest = "E0604";      // schema violation
inline constexpr const char* kErrDesignRejected = "E0605";  // front-end diagnostics
inline constexpr const char* kErrResourceLimit = "E0606";   // wraps E0501–E0503
inline constexpr const char* kErrDeadline = "E0607";        // wraps E0504
inline constexpr const char* kErrSimFailed = "E0608";       // engine/internal failure
inline constexpr const char* kErrOverloaded = "E0609";      // load shed, retry_after_ms set
inline constexpr const char* kErrDraining = "E0610";        // graceful shutdown in progress
inline constexpr const char* kErrUnknownDesign = "E0611";   // design_hash not in cache
inline constexpr const char* kErrInjectedFault = "E0612";   // chaos-mode injected failure

// Supported wire-protocol version range. Bump kProtoMax when the schema
// gains a version; raise kProtoMin only when dropping support for one.
inline constexpr uint32_t kProtoMin = 1;
inline constexpr uint32_t kProtoMax = 1;

enum class RequestOp { Ping, Compile, Run, Status, Evict, Shutdown };

const char* requestOpName(RequestOp op);

// Per-request engine/compile options. Everything here participates in the
// design-cache key (a design compiled --baseline is a different artifact
// than the optimized build of the same text).
struct RequestOptions {
  uint32_t cp = 8;            // partitioner small-threshold C_p
  bool baseline = false;      // disable const-prop/CSE/DCE
  sim::EngineKind kind = sim::EngineKind::Ccss;
  unsigned threads = 1;       // CcssPar worker lanes
  unsigned lanes = 0;         // Lane engine width (0 = engine default)

  // Canonical cache-key fragment, stable across field reordering.
  std::string cacheKey() const;
};

struct Request {
  uint32_t proto = kProtoMax;  // wire version the client declared
  RequestOp op = RequestOp::Ping;
  std::string designText;     // FIRRTL source ("design"); empty if by hash
  std::string designHash;     // content address ("design_hash")
  RequestOptions options;
  uint64_t cycles = 0;        // run: tick budget
  uint32_t batch = 0;         // run: farm instance count (0 = solo)
  std::map<std::string, uint64_t> pokes;  // run: input name -> value
  uint64_t sleepMs = 0;       // test hook (ping only, gated by the server)
};

// Strict request decode. Returns nullopt and fills code/message on any
// schema violation (the code is kErrBadRequest except where a more precise
// one applies).
std::optional<Request> parseRequest(const obs::Json& doc, std::string& code,
                                    std::string& message);

// Response builders. Every daemon reply goes through one of these so the
// wire shape can never drift from the documented schema.
obs::Json okResponse(RequestOp op);
obs::Json errorResponse(const std::string& code, const std::string& message,
                        int64_t retryAfterMs = -1);

// Reads "ok" / "error.code" out of a response document; tolerant of extra
// fields but strict about the envelope (used by the client and the chaos
// campaign validator).
struct ResponseEnvelope {
  bool ok = false;
  std::string errorCode;     // empty when ok
  std::string errorMessage;  // empty when ok
  int64_t retryAfterMs = -1; // from error.retry_after_ms when present
};
std::optional<ResponseEnvelope> parseResponseEnvelope(const obs::Json& doc);

// Content address of (firrtl text, options): SHA-256 truncated to 128 bits,
// rendered as 32 hex chars. The cache this keys is shared across untrusted
// connections, so collision resistance against adversarial inputs is part
// of the contract — a non-cryptographic hash would let one client craft a
// design that serves under another design's address. The server never
// trusts a client-supplied design_hash as a cache key: when text is
// present the hash is recomputed and a mismatch is rejected (E0604).
std::string designHash(const std::string& firrtlText, const RequestOptions& opts);

}  // namespace essent::serve
