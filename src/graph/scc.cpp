#include "graph/graph.h"

namespace essent::graph {

// Iterative Tarjan to tolerate the deep combinational chains of large
// designs without blowing the call stack.
std::vector<int32_t> tarjanScc(const DiGraph& g, int32_t* numSccs) {
  NodeId n = g.numNodes();
  std::vector<int32_t> index(n, -1), lowlink(n, 0), sccOf(n, -1);
  std::vector<bool> onStack(n, false);
  std::vector<NodeId> stack;  // Tarjan stack
  int32_t nextIndex = 0, nextScc = 0;

  struct Frame {
    NodeId v;
    size_t childIdx;
  };
  std::vector<Frame> callStack;

  for (NodeId root = 0; root < n; root++) {
    if (index[root] != -1) continue;
    callStack.push_back({root, 0});
    while (!callStack.empty()) {
      Frame& f = callStack.back();
      NodeId v = f.v;
      if (f.childIdx == 0) {
        index[v] = lowlink[v] = nextIndex++;
        stack.push_back(v);
        onStack[v] = true;
      }
      bool descended = false;
      const auto& nbrs = g.outNeighbors(v);
      while (f.childIdx < nbrs.size()) {
        NodeId w = nbrs[f.childIdx++];
        if (index[w] == -1) {
          callStack.push_back({w, 0});
          descended = true;
          break;
        }
        if (onStack[w]) lowlink[v] = std::min(lowlink[v], index[w]);
      }
      if (descended) continue;
      if (lowlink[v] == index[v]) {
        while (true) {
          NodeId w = stack.back();
          stack.pop_back();
          onStack[w] = false;
          sccOf[w] = nextScc;
          if (w == v) break;
        }
        nextScc++;
      }
      callStack.pop_back();
      if (!callStack.empty()) {
        NodeId parent = callStack.back().v;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }
  if (numSccs) *numSccs = nextScc;
  return sccOf;
}

}  // namespace essent::graph
