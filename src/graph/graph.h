// Generic directed-graph utilities used by the netlist representation and
// the acyclic partitioner: adjacency storage with deduplicated edges,
// topological sorting, and bounded reachability queries.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace essent::graph {

using NodeId = int32_t;
constexpr NodeId kNoNode = -1;

// Mutable digraph with both out- and in-adjacency. Self-loops and duplicate
// edges are ignored on insertion.
class DiGraph {
 public:
  DiGraph() = default;
  explicit DiGraph(NodeId numNodes) { resize(numNodes); }

  void resize(NodeId numNodes);
  NodeId addNode();
  NodeId numNodes() const { return static_cast<NodeId>(out_.size()); }
  int64_t numEdges() const { return numEdges_; }

  // Returns true if the edge was new.
  bool addEdge(NodeId from, NodeId to);
  bool hasEdge(NodeId from, NodeId to) const;

  const std::vector<NodeId>& outNeighbors(NodeId n) const { return out_[n]; }
  const std::vector<NodeId>& inNeighbors(NodeId n) const { return in_[n]; }

  // Kahn topological order; returns nullopt when the graph has a cycle.
  std::optional<std::vector<NodeId>> topoSort() const;

  bool isAcyclic() const { return topoSort().has_value(); }

  // True when `to` is reachable from `from` (including from == to).
  bool reachable(NodeId from, NodeId to) const;

  // All nodes reachable from the seed set (including the seeds).
  std::vector<bool> reachableSet(const std::vector<NodeId>& seeds) const;

 private:
  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  int64_t numEdges_ = 0;
};

// Tarjan strongly connected components. Returns, for each node, its SCC id;
// ids are assigned in reverse topological order of the condensation (i.e.
// an SCC's id is >= those of the SCCs it can reach). numSccs receives the
// total count.
std::vector<int32_t> tarjanScc(const DiGraph& g, int32_t* numSccs);

// Condenses `g` by a node -> cluster assignment: returns the cluster graph
// (numClusters nodes; an edge c1->c2 iff some member edge crosses them).
DiGraph condense(const DiGraph& g, const std::vector<int32_t>& clusterOf, int32_t numClusters);

}  // namespace essent::graph
