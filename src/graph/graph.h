// Generic directed-graph utilities used by the netlist representation and
// the acyclic partitioner: adjacency storage with deduplicated edges,
// topological sorting, and bounded reachability queries.
//
// Adjacency lists live in one shared 32-bit-index edge arena per direction
// (a per-node {start, count, cap} triple into the pool) instead of a
// vector-of-vectors: at million-node scale this removes two heap
// allocations per node and shrinks the per-node header from 48 to 24
// bytes. Duplicate-edge detection is degree-adaptive: a linear scan for
// ordinary nodes, and a hash index that kicks in once a node's out-degree
// crosses a threshold, so high-fanout producers (clock trees, broadcast
// buses) insert in amortized O(1) instead of O(degree).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

namespace essent::graph {

using NodeId = int32_t;
constexpr NodeId kNoNode = -1;

// Mutable digraph with both out- and in-adjacency. Self-loops and duplicate
// edges are ignored on insertion.
class DiGraph {
 public:
  // Lightweight view of one node's neighbors (contiguous in the edge
  // arena). Valid until the next mutation of the graph.
  class NeighborList {
   public:
    NeighborList(const NodeId* data, size_t size) : data_(data), size_(size) {}
    const NodeId* begin() const { return data_; }
    const NodeId* end() const { return data_ + size_; }
    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    NodeId operator[](size_t i) const { return data_[i]; }

   private:
    const NodeId* data_;
    size_t size_;
  };

  DiGraph() = default;
  explicit DiGraph(NodeId numNodes) { resize(numNodes); }

  void resize(NodeId numNodes);
  NodeId addNode();
  NodeId numNodes() const { return static_cast<NodeId>(out_.refs.size()); }
  int64_t numEdges() const { return numEdges_; }

  // Returns true if the edge was new.
  bool addEdge(NodeId from, NodeId to);
  bool hasEdge(NodeId from, NodeId to) const;

  NeighborList outNeighbors(NodeId n) const { return out_.view(n); }
  NeighborList inNeighbors(NodeId n) const { return in_.view(n); }

  // Kahn topological order; returns nullopt when the graph has a cycle.
  std::optional<std::vector<NodeId>> topoSort() const;

  bool isAcyclic() const { return topoSort().has_value(); }

  // True when `to` is reachable from `from` (including from == to).
  bool reachable(NodeId from, NodeId to) const;

  // All nodes reachable from the seed set (including the seeds).
  std::vector<bool> reachableSet(const std::vector<NodeId>& seeds) const;

 private:
  // Out-degree beyond which a node's duplicate check moves from a linear
  // scan of its adjacency to the shared hash index.
  static constexpr uint32_t kScanLimit = 16;

  struct AdjRef {
    uint32_t start = 0;
    uint32_t count = 0;
    uint32_t cap = 0;
  };

  // Pooled adjacency: all lists share one arena; a list that outgrows its
  // reservation relocates to the arena tail with doubled capacity
  // (amortized O(1) append; abandoned slots are bounded by the geometric
  // growth and never exceed the live edge count).
  struct AdjStore {
    std::vector<AdjRef> refs;
    std::vector<NodeId> pool;

    void push(NodeId n, NodeId v);
    NeighborList view(NodeId n) const {
      const AdjRef& r = refs[static_cast<size_t>(n)];
      return NeighborList(pool.data() + r.start, r.count);
    }
  };

  static uint64_t edgeKey(NodeId from, NodeId to) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
           static_cast<uint32_t>(to);
  }

  AdjStore out_, in_;
  // Hash index of (from, to) pairs for nodes whose out-degree crossed
  // kScanLimit; hotFrom_[n] records that node n's edges are indexed.
  std::unordered_set<uint64_t> hotEdges_;
  std::vector<uint8_t> hotFrom_;
  int64_t numEdges_ = 0;
};

// Tarjan strongly connected components. Returns, for each node, its SCC id;
// ids are assigned in reverse topological order of the condensation (i.e.
// an SCC's id is >= those of the SCCs it can reach). numSccs receives the
// total count.
std::vector<int32_t> tarjanScc(const DiGraph& g, int32_t* numSccs);

// Condenses `g` by a node -> cluster assignment: returns the cluster graph
// (numClusters nodes; an edge c1->c2 iff some member edge crosses them).
DiGraph condense(const DiGraph& g, const std::vector<int32_t>& clusterOf, int32_t numClusters);

}  // namespace essent::graph
