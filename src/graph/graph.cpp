#include "graph/graph.h"

#include <algorithm>
#include <queue>

namespace essent::graph {

void DiGraph::resize(NodeId numNodes) {
  out_.resize(static_cast<size_t>(numNodes));
  in_.resize(static_cast<size_t>(numNodes));
}

NodeId DiGraph::addNode() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(out_.size()) - 1;
}

bool DiGraph::addEdge(NodeId from, NodeId to) {
  if (from == to) return false;
  auto& nbrs = out_[from];
  if (std::find(nbrs.begin(), nbrs.end(), to) != nbrs.end()) return false;
  nbrs.push_back(to);
  in_[to].push_back(from);
  numEdges_++;
  return true;
}

bool DiGraph::hasEdge(NodeId from, NodeId to) const {
  const auto& nbrs = out_[from];
  return std::find(nbrs.begin(), nbrs.end(), to) != nbrs.end();
}

std::optional<std::vector<NodeId>> DiGraph::topoSort() const {
  NodeId n = numNodes();
  std::vector<int32_t> indeg(n, 0);
  for (NodeId v = 0; v < n; v++) indeg[v] = static_cast<int32_t>(in_[v].size());
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<NodeId> ready;
  for (NodeId v = 0; v < n; v++)
    if (indeg[v] == 0) ready.push_back(v);
  while (!ready.empty()) {
    NodeId v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (NodeId w : out_[v]) {
      if (--indeg[w] == 0) ready.push_back(w);
    }
  }
  if (static_cast<NodeId>(order.size()) != n) return std::nullopt;
  return order;
}

bool DiGraph::reachable(NodeId from, NodeId to) const {
  if (from == to) return true;
  std::vector<bool> seen(numNodes(), false);
  std::vector<NodeId> stack = {from};
  seen[from] = true;
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    for (NodeId w : out_[v]) {
      if (w == to) return true;
      if (!seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  return false;
}

std::vector<bool> DiGraph::reachableSet(const std::vector<NodeId>& seeds) const {
  std::vector<bool> seen(numNodes(), false);
  std::vector<NodeId> stack;
  for (NodeId s : seeds) {
    if (!seen[s]) {
      seen[s] = true;
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    for (NodeId w : out_[v]) {
      if (!seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  return seen;
}

DiGraph condense(const DiGraph& g, const std::vector<int32_t>& clusterOf, int32_t numClusters) {
  DiGraph cg(numClusters);
  for (NodeId v = 0; v < g.numNodes(); v++) {
    for (NodeId w : g.outNeighbors(v)) {
      int32_t cv = clusterOf[v], cw = clusterOf[w];
      if (cv != cw) cg.addEdge(cv, cw);
    }
  }
  return cg;
}

}  // namespace essent::graph
