#include "graph/graph.h"

#include <algorithm>

namespace essent::graph {

void DiGraph::AdjStore::push(NodeId n, NodeId v) {
  AdjRef& r = refs[static_cast<size_t>(n)];
  if (r.count == r.cap) {
    uint32_t newCap = r.cap == 0 ? 4 : r.cap * 2;
    uint32_t newStart = static_cast<uint32_t>(pool.size());
    pool.resize(pool.size() + newCap);
    std::copy(pool.begin() + r.start, pool.begin() + r.start + r.count,
              pool.begin() + newStart);
    r.start = newStart;
    r.cap = newCap;
  }
  pool[r.start + r.count] = v;
  r.count++;
}

void DiGraph::resize(NodeId numNodes) {
  out_.refs.resize(static_cast<size_t>(numNodes));
  in_.refs.resize(static_cast<size_t>(numNodes));
  hotFrom_.resize(static_cast<size_t>(numNodes), 0);
}

NodeId DiGraph::addNode() {
  out_.refs.emplace_back();
  in_.refs.emplace_back();
  hotFrom_.push_back(0);
  return static_cast<NodeId>(out_.refs.size()) - 1;
}

bool DiGraph::addEdge(NodeId from, NodeId to) {
  if (from == to) return false;
  if (hotFrom_[static_cast<size_t>(from)]) {
    if (!hotEdges_.insert(edgeKey(from, to)).second) return false;
  } else {
    NeighborList nbrs = out_.view(from);
    if (std::find(nbrs.begin(), nbrs.end(), to) != nbrs.end()) return false;
    if (nbrs.size() >= kScanLimit) {
      // Degree crossed the scan threshold: index this node's edges so
      // further inserts and duplicate checks are O(1).
      for (NodeId w : nbrs) hotEdges_.insert(edgeKey(from, w));
      hotEdges_.insert(edgeKey(from, to));
      hotFrom_[static_cast<size_t>(from)] = 1;
    }
  }
  out_.push(from, to);
  in_.push(to, from);
  numEdges_++;
  return true;
}

bool DiGraph::hasEdge(NodeId from, NodeId to) const {
  if (hotFrom_[static_cast<size_t>(from)]) return hotEdges_.count(edgeKey(from, to)) != 0;
  NeighborList nbrs = out_.view(from);
  return std::find(nbrs.begin(), nbrs.end(), to) != nbrs.end();
}

std::optional<std::vector<NodeId>> DiGraph::topoSort() const {
  NodeId n = numNodes();
  std::vector<int32_t> indeg(static_cast<size_t>(n), 0);
  for (NodeId v = 0; v < n; v++) indeg[static_cast<size_t>(v)] = static_cast<int32_t>(inNeighbors(v).size());
  std::vector<NodeId> order;
  order.reserve(static_cast<size_t>(n));
  std::vector<NodeId> ready;
  for (NodeId v = 0; v < n; v++)
    if (indeg[static_cast<size_t>(v)] == 0) ready.push_back(v);
  while (!ready.empty()) {
    NodeId v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (NodeId w : outNeighbors(v)) {
      if (--indeg[static_cast<size_t>(w)] == 0) ready.push_back(w);
    }
  }
  if (static_cast<NodeId>(order.size()) != n) return std::nullopt;
  return order;
}

bool DiGraph::reachable(NodeId from, NodeId to) const {
  if (from == to) return true;
  std::vector<bool> seen(static_cast<size_t>(numNodes()), false);
  std::vector<NodeId> stack = {from};
  seen[static_cast<size_t>(from)] = true;
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    for (NodeId w : outNeighbors(v)) {
      if (w == to) return true;
      if (!seen[static_cast<size_t>(w)]) {
        seen[static_cast<size_t>(w)] = true;
        stack.push_back(w);
      }
    }
  }
  return false;
}

std::vector<bool> DiGraph::reachableSet(const std::vector<NodeId>& seeds) const {
  std::vector<bool> seen(static_cast<size_t>(numNodes()), false);
  std::vector<NodeId> stack;
  for (NodeId s : seeds) {
    if (!seen[static_cast<size_t>(s)]) {
      seen[static_cast<size_t>(s)] = true;
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    for (NodeId w : outNeighbors(v)) {
      if (!seen[static_cast<size_t>(w)]) {
        seen[static_cast<size_t>(w)] = true;
        stack.push_back(w);
      }
    }
  }
  return seen;
}

DiGraph condense(const DiGraph& g, const std::vector<int32_t>& clusterOf, int32_t numClusters) {
  DiGraph cg(numClusters);
  for (NodeId v = 0; v < g.numNodes(); v++) {
    for (NodeId w : g.outNeighbors(v)) {
      int32_t cv = clusterOf[static_cast<size_t>(v)], cw = clusterOf[static_cast<size_t>(w)];
      if (cv != cw) cg.addEdge(cv, cw);
    }
  }
  return cg;
}

}  // namespace essent::graph
