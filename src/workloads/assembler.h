// Miniature assembler for the TinySoC ISA (see designs/tinysoc.h for the
// encoding). Programs are built in C++ with labeled branches; `assemble`
// resolves labels and returns the instruction words for backdoor loading
// into imem.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace essent::workloads {

enum class Opc : uint16_t {
  Nop = 0, Addi = 1, Add = 2, Sub = 3, And = 4, Or = 5, Xor = 6, Mul = 7,
  Lw = 8, Sw = 9, Beq = 10, Bne = 11, Jmp = 12, Shl = 13, Shr = 14, Halt = 15,
};

// Raw encoders (exposed for tests).
uint16_t encodeR(Opc op, unsigned rd, unsigned rs, unsigned rt);
uint16_t encodeI(Opc op, unsigned rd, unsigned rs, int imm6);
uint16_t encodeJ(Opc op, unsigned imm12);

class AsmError : public std::runtime_error {
 public:
  explicit AsmError(const std::string& m) : std::runtime_error("asm error: " + m) {}
};

// Label-resolving program builder.
class Asm {
 public:
  // Current instruction address.
  uint16_t here() const { return static_cast<uint16_t>(words_.size()); }

  void label(const std::string& name);

  void nop() { emit(encodeR(Opc::Nop, 0, 0, 0)); }
  void addi(unsigned rd, unsigned rs, int imm6) { emit(encodeI(Opc::Addi, rd, rs, imm6)); }
  void add(unsigned rd, unsigned rs, unsigned rt) { emit(encodeR(Opc::Add, rd, rs, rt)); }
  void sub(unsigned rd, unsigned rs, unsigned rt) { emit(encodeR(Opc::Sub, rd, rs, rt)); }
  void and_(unsigned rd, unsigned rs, unsigned rt) { emit(encodeR(Opc::And, rd, rs, rt)); }
  void or_(unsigned rd, unsigned rs, unsigned rt) { emit(encodeR(Opc::Or, rd, rs, rt)); }
  void xor_(unsigned rd, unsigned rs, unsigned rt) { emit(encodeR(Opc::Xor, rd, rs, rt)); }
  void mul(unsigned rd, unsigned rs, unsigned rt) { emit(encodeR(Opc::Mul, rd, rs, rt)); }
  void lw(unsigned rd, unsigned rs, int imm6) { emit(encodeI(Opc::Lw, rd, rs, imm6)); }
  void sw(unsigned rdData, unsigned rsBase, int imm6) {
    emit(encodeI(Opc::Sw, rdData, rsBase, imm6));
  }
  void shl(unsigned rd, unsigned rs, unsigned sh3) { emit(encodeR(Opc::Shl, rd, rs, sh3)); }
  void shr(unsigned rd, unsigned rs, unsigned sh3) { emit(encodeR(Opc::Shr, rd, rs, sh3)); }
  void halt() { emit(encodeR(Opc::Halt, 0, 0, 0)); }

  // Branch target = branch pc + imm6: labels resolved at assemble().
  void beq(unsigned rd, unsigned rs, const std::string& target);
  void bne(unsigned rd, unsigned rs, const std::string& target);
  void jmp(const std::string& target);

  // Loads a 16-bit immediate into rd using addi/shl/or (r0 as zero source).
  void li(unsigned rd, uint16_t value);

  // Resolves fixups; throws AsmError on unknown labels or out-of-range
  // branch offsets.
  std::vector<uint16_t> assemble();

 private:
  struct Fixup {
    size_t index;
    Opc op;
    unsigned a, b;
    std::string target;
  };
  std::vector<uint16_t> words_;
  std::unordered_map<std::string, uint16_t> labels_;
  std::vector<Fixup> fixups_;

  void emit(uint16_t w) { words_.push_back(w); }
};

}  // namespace essent::workloads
