#include "workloads/programs.h"

#include <vector>

#include "support/rng.h"
#include "workloads/assembler.h"

namespace essent::workloads {

namespace {

}  // namespace

// Host-side architectural reference model of the TinySoC ISA (CPU + data
// memory only; MMIO stores are architecturally inert and the fuzz/benchmark
// programs never load from MMIO). Used to compute expected results and, in
// tests, to cross-check the RTL core register for register.
RefState runReferenceModel(const Program& p, uint32_t maxSteps) {
  RefState st;
  std::vector<uint16_t> dmem(1u << 16, 0);
  for (auto [addr, val] : p.data) dmem[addr] = val;
  uint16_t* regs = st.regs;
  uint16_t pc = 0;
  for (uint32_t step = 0; step < maxSteps; step++) {
    uint16_t instr = pc < p.code.size() ? p.code[pc] : 0;
    st.instret++;
    uint16_t op = instr >> 12;
    unsigned rd = (instr >> 9) & 7, rs = (instr >> 6) & 7, rt = (instr >> 3) & 7;
    int imm6 = static_cast<int>(instr & 0x3f);
    if (imm6 >= 32) imm6 -= 64;
    uint16_t imm16 = static_cast<uint16_t>(imm6);
    auto wr = [&](unsigned r, uint16_t v) {
      if (r != 0) regs[r] = v;
    };
    uint16_t next = static_cast<uint16_t>(pc + 1);
    switch (op) {
      case 1: wr(rd, static_cast<uint16_t>(regs[rs] + imm16)); break;
      case 2: wr(rd, static_cast<uint16_t>(regs[rs] + regs[rt])); break;
      case 3: wr(rd, static_cast<uint16_t>(regs[rs] - regs[rt])); break;
      case 4: wr(rd, regs[rs] & regs[rt]); break;
      case 5: wr(rd, regs[rs] | regs[rt]); break;
      case 6: wr(rd, regs[rs] ^ regs[rt]); break;
      case 7: wr(rd, static_cast<uint16_t>(regs[rs] * regs[rt])); break;
      case 8: {  // LW
        uint16_t ea = static_cast<uint16_t>(regs[rs] + imm16);
        wr(rd, (ea & 0x8000) ? 0 : dmem[ea]);
        break;
      }
      case 9: {  // SW (MMIO stores are inert here)
        uint16_t ea = static_cast<uint16_t>(regs[rs] + imm16);
        if (!(ea & 0x8000)) dmem[ea] = regs[rd];
        break;
      }
      case 10: if (regs[rd] == regs[rs]) next = static_cast<uint16_t>(pc + imm16); break;
      case 11: if (regs[rd] != regs[rs]) next = static_cast<uint16_t>(pc + imm16); break;
      case 12: next = instr & 0xfff; break;
      case 13: wr(rd, static_cast<uint16_t>(regs[rs] << rt)); break;
      case 14: wr(rd, static_cast<uint16_t>(regs[rs] >> rt)); break;
      case 15:
        st.instret--;  // the RTL core does not count HALT
        st.halted = true;
        return st;
      default: break;
    }
    pc = next;
  }
  return st;
}

namespace {
uint16_t runReference(const Program& p, uint32_t maxSteps = 50'000'000) {
  return runReferenceModel(p, maxSteps).regs[1];
}
}  // namespace

Program dhrystoneProgram(uint32_t iterations) {
  Asm a;
  // x1 checksum, x2 loop counter, x6 MMIO base, x7 mask.
  a.li(1, 0);
  a.li(2, static_cast<uint16_t>(iterations));
  a.li(6, 0x8000);
  a.li(7, 15);
  a.label("loop");
  a.addi(3, 2, 7);
  a.mul(4, 3, 3);
  a.xor_(1, 1, 4);
  a.shl(5, 3, 2);
  a.add(1, 1, 5);
  a.sw(1, 0, 20);
  a.lw(4, 0, 20);
  a.add(1, 1, 4);
  a.shr(5, 1, 3);
  a.xor_(1, 1, 5);
  a.and_(5, 2, 7);
  a.bne(5, 0, "skip_accel");
  a.sw(1, 6, 0);  // MMIO: start accelerator 0 with the checksum as operand
  a.label("skip_accel");
  a.addi(2, 2, -1);
  a.bne(2, 0, "loop");
  a.sw(1, 0, 21);
  a.halt();
  Program p;
  p.name = "dhrystone";
  p.description = "mixed integer/logic/branch loop with moderate memory traffic";
  p.code = a.assemble();
  return p;
}

Program matmulProgram(uint32_t n, uint32_t repeats) {
  Asm a;
  // x1 checksum, x2 i, x3 j, x4 k, x7 acc, x5/x6 temps.
  // dmem[12] holds the repeat counter; scratch at dmem[11].
  a.li(1, 0);
  a.li(5, static_cast<uint16_t>(repeats));
  a.sw(5, 0, 12);
  a.label("rep_loop");
  a.li(2, 0);
  a.label("i_loop");
  a.li(3, 0);
  a.label("j_loop");
  a.li(7, 0);
  a.li(4, 0);
  a.label("k_loop");
  // x5 = &A[i][k] = 256 + i*n + k
  a.li(6, static_cast<uint16_t>(n));
  a.mul(5, 2, 6);
  a.add(5, 5, 4);
  a.li(6, 256);
  a.add(5, 5, 6);
  a.lw(5, 5, 0);  // x5 = A[i][k]
  a.sw(5, 0, 11);
  // x6 = &B[k][j] = 512 + k*n + j
  a.li(6, static_cast<uint16_t>(n));
  a.mul(6, 4, 6);
  a.add(6, 6, 3);
  a.li(5, 512);
  a.add(6, 6, 5);
  a.lw(6, 6, 0);  // x6 = B[k][j]
  a.lw(5, 0, 11);
  a.mul(5, 5, 6);
  a.add(7, 7, 5);
  a.addi(4, 4, 1);
  a.li(6, static_cast<uint16_t>(n));
  a.bne(4, 6, "k_loop");
  // C[i][j] = acc at 768 + i*n + j; fold into checksum too.
  a.li(6, static_cast<uint16_t>(n));
  a.mul(5, 2, 6);
  a.add(5, 5, 3);
  a.li(6, 768);
  a.add(5, 5, 6);
  a.sw(7, 5, 0);
  a.xor_(1, 1, 7);
  a.addi(3, 3, 1);
  a.li(6, static_cast<uint16_t>(n));
  a.beq(3, 6, "j_done");
  a.jmp("j_loop");
  a.label("j_done");
  a.addi(2, 2, 1);
  a.li(6, static_cast<uint16_t>(n));
  a.beq(2, 6, "i_done");
  a.jmp("i_loop");
  a.label("i_done");
  a.lw(5, 0, 12);
  a.addi(5, 5, -1);
  a.sw(5, 0, 12);
  a.beq(5, 0, "done");
  a.jmp("rep_loop");
  a.label("done");
  a.sw(1, 0, 21);
  a.halt();

  Program p;
  p.name = "matmul";
  p.description = "dense matrix multiplication from data memory";
  p.code = a.assemble();
  for (uint32_t i = 0; i < n; i++) {
    for (uint32_t k = 0; k < n; k++) {
      p.data.emplace_back(static_cast<uint16_t>(256 + i * n + k),
                          static_cast<uint16_t>((i * 3 + k * 5 + 1) & 0xffff));
      p.data.emplace_back(static_cast<uint16_t>(512 + k * n + i),
                          static_cast<uint16_t>((k * 7 + i * 11 + 3) & 0xffff));
    }
  }
  return p;
}

Program pchaseProgram(uint32_t listLength, uint32_t laps) {
  Asm a;
  uint32_t steps = listLength * laps;
  a.li(1, 256);  // head pointer
  a.li(2, static_cast<uint16_t>(steps));
  a.label("loop");
  a.lw(1, 1, 0);  // serialized dependent load
  a.addi(2, 2, -1);
  a.bne(2, 0, "loop");
  a.sw(1, 0, 21);
  a.halt();

  Program p;
  p.name = "pchase";
  p.description = "pointer-chasing over a shuffled linked list (dependent loads)";
  p.code = a.assemble();
  // Single-cycle permutation over [0, listLength): Sattolo's algorithm.
  std::vector<uint32_t> perm(listLength);
  for (uint32_t i = 0; i < listLength; i++) perm[i] = i;
  Rng rng(listLength * 2654435761ULL + 17);
  for (uint32_t i = listLength - 1; i >= 1; i--) {
    uint32_t j = static_cast<uint32_t>(rng.nextBelow(i));
    std::swap(perm[i], perm[j]);
  }
  for (uint32_t i = 0; i < listLength; i++)
    p.data.emplace_back(static_cast<uint16_t>(256 + i), static_cast<uint16_t>(256 + perm[i]));
  return p;
}

uint16_t dhrystoneExpected(uint32_t iterations) { return runReference(dhrystoneProgram(iterations)); }
uint16_t matmulExpected(uint32_t n, uint32_t repeats) { return runReference(matmulProgram(n, repeats)); }
uint16_t pchaseExpected(uint32_t listLength, uint32_t laps) {
  return runReference(pchaseProgram(listLength, laps));
}

}  // namespace essent::workloads
