// The three benchmark programs animating TinySoC, mirroring the behavioural
// roles of the paper's Table II workloads:
//   * dhrystone — mixed integer/logic/branch loop with moderate memory
//     traffic (the "typical integer code" profile);
//   * matmul — dense NxN matrix multiply from data memory (compute + loads);
//   * pchase — pointer chasing over a shuffled linked list in data memory:
//     every instruction depends on the previous load, so the core spends
//     most cycles stalled and the design's activity factor is lowest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace essent::workloads {

struct Program {
  std::string name;
  std::string description;
  std::vector<uint16_t> code;
  // Initial data memory contents: (address, value) pairs.
  std::vector<std::pair<uint16_t, uint16_t>> data;
};

// `iterations` scales runtime; each program halts when done.
Program dhrystoneProgram(uint32_t iterations = 64);
Program matmulProgram(uint32_t n = 6, uint32_t repeats = 2);
Program pchaseProgram(uint32_t listLength = 64, uint32_t laps = 8);

// Expected architectural results, for functional checks: the final value
// each program leaves in x1 (computed by a host-side reference model).
uint16_t dhrystoneExpected(uint32_t iterations = 64);
uint16_t matmulExpected(uint32_t n = 6, uint32_t repeats = 2);
uint16_t pchaseExpected(uint32_t listLength = 64, uint32_t laps = 8);

// Full architectural state of the reference model at HALT (or after
// maxSteps): the eight registers and the executed instruction count. Used
// by the ISA conformance fuzz tests to compare the RTL core register for
// register.
struct RefState {
  uint16_t regs[8] = {0};
  uint64_t instret = 0;
  bool halted = false;
};
RefState runReferenceModel(const Program& program, uint32_t maxSteps = 1'000'000);

}  // namespace essent::workloads
