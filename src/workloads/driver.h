// Workload driver: loads a TinySoC program via the backdoor memory
// interface, applies reset, runs to completion (HALT fires a stop()) and
// checks the architectural result against the reference model.
#pragma once

#include <cstdint>

#include "sim/engine.h"
#include "workloads/programs.h"

namespace essent::workloads {

struct WorkloadResult {
  uint64_t cycles = 0;
  bool halted = false;
  uint64_t instret = 0;
  uint16_t result = 0;   // dmem[21], each program's final checksum
  double seconds = 0.0;  // wall-clock simulation time
  // End-of-run counter snapshot (includes the reset cycles), so bench
  // binaries report work/overhead without touching the engine afterwards.
  sim::EngineStats stats;
};

// Loads code into imem and data into dmem. Must be called before the first
// tick (backdoor contract).
void loadProgram(sim::Engine& engine, const Program& program);

// Holds reset for two cycles then runs until the design stops or maxCycles
// elapse.
WorkloadResult runWorkload(sim::Engine& engine, uint64_t maxCycles);

}  // namespace essent::workloads
