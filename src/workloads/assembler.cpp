#include "workloads/assembler.h"

#include "support/strutil.h"

namespace essent::workloads {

namespace {

void checkReg(unsigned r) {
  if (r > 7) throw AsmError(strfmt("register x%u out of range", r));
}

}  // namespace

uint16_t encodeR(Opc op, unsigned rd, unsigned rs, unsigned rt) {
  checkReg(rd);
  checkReg(rs);
  checkReg(rt);
  return static_cast<uint16_t>((static_cast<uint16_t>(op) << 12) | (rd << 9) | (rs << 6) |
                               (rt << 3));
}

uint16_t encodeI(Opc op, unsigned rd, unsigned rs, int imm6) {
  checkReg(rd);
  checkReg(rs);
  if (imm6 < -32 || imm6 > 31) throw AsmError(strfmt("imm6 %d out of range", imm6));
  return static_cast<uint16_t>((static_cast<uint16_t>(op) << 12) | (rd << 9) | (rs << 6) |
                               (static_cast<unsigned>(imm6) & 0x3f));
}

uint16_t encodeJ(Opc op, unsigned imm12) {
  if (imm12 > 0xfff) throw AsmError(strfmt("imm12 %u out of range", imm12));
  return static_cast<uint16_t>((static_cast<uint16_t>(op) << 12) | imm12);
}

void Asm::label(const std::string& name) {
  if (!labels_.emplace(name, here()).second) throw AsmError("duplicate label " + name);
}

void Asm::beq(unsigned rd, unsigned rs, const std::string& target) {
  fixups_.push_back(Fixup{words_.size(), Opc::Beq, rd, rs, target});
  emit(0);
}

void Asm::bne(unsigned rd, unsigned rs, const std::string& target) {
  fixups_.push_back(Fixup{words_.size(), Opc::Bne, rd, rs, target});
  emit(0);
}

void Asm::jmp(const std::string& target) {
  fixups_.push_back(Fixup{words_.size(), Opc::Jmp, 0, 0, target});
  emit(0);
}

void Asm::li(unsigned rd, uint16_t value) {
  // Built from 4-bit chunks (addi immediates are limited to [-32, 31]):
  // rd = hi4; then three rounds of rd = (rd << 4) + next4.
  if (value <= 31) {
    addi(rd, 0, static_cast<int>(value));
    return;
  }
  addi(rd, 0, static_cast<int>((value >> 12) & 0xf));
  for (int shift = 8; shift >= 0; shift -= 4) {
    shl(rd, rd, 4);
    addi(rd, rd, static_cast<int>((value >> shift) & 0xf));
  }
}

std::vector<uint16_t> Asm::assemble() {
  for (const auto& f : fixups_) {
    auto it = labels_.find(f.target);
    if (it == labels_.end()) throw AsmError("undefined label " + f.target);
    if (f.op == Opc::Jmp) {
      words_[f.index] = encodeJ(Opc::Jmp, it->second);
    } else {
      int offset = static_cast<int>(it->second) - static_cast<int>(f.index);
      if (offset < -32 || offset > 31)
        throw AsmError(strfmt("branch to %s out of range (%d)", f.target.c_str(), offset));
      words_[f.index] = encodeI(f.op, f.a, f.b, offset);
    }
  }
  fixups_.clear();
  return words_;
}

}  // namespace essent::workloads
