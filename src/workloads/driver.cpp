#include "workloads/driver.h"

#include <chrono>

namespace essent::workloads {

void loadProgram(sim::Engine& engine, const Program& program) {
  for (size_t i = 0; i < program.code.size(); i++)
    engine.pokeMem("imem", i, program.code[i]);
  for (auto [addr, val] : program.data) engine.pokeMem("dmem", addr, val);
}

WorkloadResult runWorkload(sim::Engine& engine, uint64_t maxCycles) {
  WorkloadResult res;
  auto start = std::chrono::steady_clock::now();
  engine.poke("reset", 1);
  engine.tick();
  engine.tick();
  engine.poke("reset", 0);
  for (uint64_t c = 0; c < maxCycles && !engine.stopped(); c++) {
    engine.tick();
    res.cycles++;
  }
  auto end = std::chrono::steady_clock::now();
  res.seconds = std::chrono::duration<double>(end - start).count();
  res.halted = engine.stopped();
  res.instret = engine.peek("instret");
  res.result = static_cast<uint16_t>(engine.peekMem("dmem", 21));
  res.stats = engine.stats();
  return res;
}

}  // namespace essent::workloads
