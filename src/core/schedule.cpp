#include "core/schedule.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "obs/phase_timer.h"

namespace essent::core {

namespace {

// Deduplicates and sorts a wake list for deterministic triggering.
std::vector<int32_t> dedupSorted(std::vector<int32_t> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

// Longest-path levelization of the ordered partition graph. Operates on
// partition ids (the graph's node space); edges all point from earlier to
// later schedule positions (elision.schedule is a topo order of the graph),
// so a single pass in schedule order suffices. Beyond the graph's own edges
// (combinational producer->consumer plus the elision ordering edges
// reader->writer), elided writes to the same memory from different
// partitions are chained in schedule order: two such writers may touch the
// same row, and keeping them in distinct waves preserves the serial commit
// order under concurrent wave execution.
void levelize(CondPartSchedule& sched, const ElisionResult& elision,
              const std::vector<int32_t>& posOfPart) {
  const size_t n = elision.schedule.size();
  sched.levelOf.assign(n, 0);
  sched.waves.clear();
  if (n == 0) return;

  std::vector<int32_t> levelOfPart(n, 0);
  auto raise = [&](int32_t from, int32_t to) {
    int32_t& lv = levelOfPart[static_cast<size_t>(to)];
    lv = std::max(lv, levelOfPart[static_cast<size_t>(from)] + 1);
  };
  // Memory hazard chains, keyed by mem index: previous elided-writer
  // partition (in schedule order) -> next one.
  std::vector<int32_t> lastMemWriter(elision.memWriteElided.size(), -1);
  for (int32_t pid : elision.schedule) {
    // Incoming hazard edges first: they finalize this partition's level
    // before it propagates to its successors.
    const CondPart& part = sched.parts[static_cast<size_t>(posOfPart[static_cast<size_t>(pid)])];
    for (const SchedMemWrite& mw : part.memWrites) {
      int32_t& prev = lastMemWriter[static_cast<size_t>(mw.memIdx)];
      if (prev >= 0 && prev != pid) raise(prev, pid);
      prev = pid;
    }
    for (int32_t succ : elision.orderedPartGraph.outNeighbors(pid)) raise(pid, succ);
  }

  int32_t maxLevel = 0;
  for (size_t pid = 0; pid < n; pid++) {
    sched.levelOf[static_cast<size_t>(posOfPart[pid])] = levelOfPart[pid];
    maxLevel = std::max(maxLevel, levelOfPart[pid]);
  }
  sched.waves.resize(static_cast<size_t>(maxLevel) + 1);
  for (size_t pos = 0; pos < n; pos++)
    sched.waves[static_cast<size_t>(sched.levelOf[pos])].push_back(static_cast<int32_t>(pos));
}

}  // namespace

size_t CondPartSchedule::maxWaveWidth() const {
  size_t w = 0;
  for (const auto& wave : waves) w = std::max(w, wave.size());
  return w;
}

CondPartSchedule buildScheduleFrom(const Netlist& nl, const Partitioning& parts,
                                   bool stateElision) {
  obs::ScopedPhaseTimer phaseTimer("schedule");
  const sim::SimIR& ir = *nl.ir;
  ElisionResult elision = analyzeElision(nl, parts, stateElision);

  CondPartSchedule sched;
  sched.partitionStats = parts.stats;

  // Map partition id -> position in the final schedule.
  std::vector<int32_t> posOfPart(parts.numPartitions());
  for (size_t i = 0; i < elision.schedule.size(); i++)
    posOfPart[static_cast<size_t>(elision.schedule[i])] = static_cast<int32_t>(i);

  sched.parts.resize(parts.numPartitions());

  // Schedule-order position of the partition owning a node.
  auto posOfNode = [&](int32_t node) {
    return posOfPart[static_cast<size_t>(parts.partOf[static_cast<size_t>(node)])];
  };

  // Ops per partition, ascending global index (global op order is
  // topological, so its restriction to a partition is a valid evaluation
  // order within the partition).
  for (size_t node = 0; node < nl.nodes.size(); node++) {
    const NetNode& nn = nl.nodes[node];
    if (nn.kind != NodeKind::Op) continue;
    auto& ops = sched.parts[static_cast<size_t>(posOfNode(static_cast<int32_t>(node)))].ops;
    if (nn.index2 >= 0) {
      // Supernode: all members belong to this node's partition.
      for (int32_t m : ir.supers[static_cast<size_t>(nn.index2)]) ops.push_back(m);
    } else {
      ops.push_back(nn.index);
    }
  }
  for (auto& part : sched.parts) std::sort(part.ops.begin(), part.ops.end());

  // Partition outputs: combinationally produced signals consumed by a node
  // in another partition. Consumers are recorded as schedule positions so
  // the engine can set activity flags directly (push-direction triggering
  // with one flag write per consumer, OR-reduced per output in the engine).
  // Grouping goes through a signal-keyed index instead of a linear scan of
  // the producer's output list (which is quadratic for wide producers);
  // output order stays first-encounter, and dedupSorted below canonicalizes
  // the consumer lists.
  {
    std::unordered_map<int32_t, size_t> outIdxOfSig;  // sig -> index in its producer's outputs
    for (size_t node = 0; node < nl.nodes.size(); node++) {
      int32_t myPos = posOfNode(static_cast<int32_t>(node));
      for (int32_t sig : nl.nodeReads[node]) {
        int32_t producer = nl.producerOf[static_cast<size_t>(sig)];
        if (producer < 0) continue;  // sources handled via input/state triggers
        int32_t prodPos = posOfNode(producer);
        if (prodPos == myPos) continue;
        auto& outs = sched.parts[static_cast<size_t>(prodPos)].outputs;
        auto [it, inserted] = outIdxOfSig.emplace(sig, outs.size());
        if (inserted) {
          outs.push_back(PartOutput{sig, {myPos}});
        } else {
          outs[it->second].consumers.push_back(myPos);
        }
      }
    }
  }
  for (auto& part : sched.parts) {
    for (auto& o : part.outputs) o.consumers = dedupSorted(std::move(o.consumers));
    sched.totalOutputs += part.outputs.size();
  }

  // Register writes: elided ones execute at the end of their partition and
  // wake the register's reader partitions (which already ran this cycle —
  // the flags persist into the next cycle, including self-wakeups);
  // non-elided ones go to the global phase 2.
  for (size_t r = 0; r < ir.regs.size(); r++) {
    std::vector<int32_t> wake;
    for (int32_t reader : nl.regReaders[r]) wake.push_back(posOfNode(reader));
    SchedRegWrite rw{static_cast<int32_t>(r), dedupSorted(std::move(wake))};
    if (elision.regElided[r]) {
      int32_t pos = posOfNode(nl.nodeOfRegWrite[r]);
      sched.parts[static_cast<size_t>(pos)].regWrites.push_back(std::move(rw));
      sched.elidedRegs++;
    } else {
      sched.deferredRegs.push_back(std::move(rw));
    }
  }

  for (size_t m = 0; m < ir.mems.size(); m++) {
    std::vector<int32_t> wake;
    for (int32_t reader : nl.memReaders[m]) wake.push_back(posOfNode(reader));
    wake = dedupSorted(std::move(wake));
    for (size_t w = 0; w < ir.mems[m].writers.size(); w++) {
      SchedMemWrite mw{static_cast<int32_t>(m), static_cast<int32_t>(w), wake};
      if (elision.memWriteElided[m][w]) {
        int32_t pos = posOfNode(nl.nodeOfMemWrite[m][w]);
        sched.parts[static_cast<size_t>(pos)].memWrites.push_back(std::move(mw));
        sched.elidedMemWrites++;
      } else {
        sched.deferredMemWrites.push_back(std::move(mw));
      }
    }
  }

  // Input-change triggers.
  sched.inputConsumers.resize(ir.inputs.size());
  for (size_t i = 0; i < ir.inputs.size(); i++) {
    std::vector<int32_t> wake;
    for (int32_t node : nl.sourceConsumers[static_cast<size_t>(ir.inputs[i])])
      wake.push_back(posOfNode(node));
    sched.inputConsumers[i] = dedupSorted(std::move(wake));
  }

  levelize(sched, elision, posOfPart);

  return sched;
}

CondPartSchedule buildSchedule(const Netlist& nl, const ScheduleOptions& opts) {
  Partitioning parts = partitionNetlist(nl, opts.partition);
  return buildScheduleFrom(nl, parts, opts.stateElision);
}

}  // namespace essent::core
