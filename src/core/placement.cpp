#include "core/placement.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/phase_timer.h"

namespace essent::core {

std::vector<std::pair<int32_t, int32_t>> placementEdges(const CondPartSchedule& sched) {
  std::vector<std::pair<int32_t, int32_t>> edges;
  const int32_t n = static_cast<int32_t>(sched.parts.size());
  // Previous elided-writer position per memory (hazard chains mirror
  // levelize(): consecutive elided writers of one memory may touch the same
  // row, so serial commit order must survive concurrent execution).
  std::vector<std::pair<int32_t, int32_t>> lastMemWriter;  // (memIdx, pos)
  for (int32_t pos = 0; pos < n; pos++) {
    const CondPart& part = sched.parts[static_cast<size_t>(pos)];
    // Combinational producer -> consumer.
    for (const PartOutput& o : part.outputs)
      for (int32_t c : o.consumers)
        if (c != pos) edges.emplace_back(pos, c);
    // Elision ordering: every cross-partition reader of an elided state
    // element must run before its writer partition clobbers the old value.
    for (const SchedRegWrite& rw : part.regWrites)
      for (int32_t r : rw.wakeParts)
        if (r != pos) edges.emplace_back(r, pos);
    for (const SchedMemWrite& mw : part.memWrites) {
      for (int32_t r : mw.wakeParts)
        if (r != pos) edges.emplace_back(r, pos);
      auto it = std::find_if(lastMemWriter.begin(), lastMemWriter.end(),
                             [&](const auto& p) { return p.first == mw.memIdx; });
      if (it == lastMemWriter.end()) {
        lastMemWriter.emplace_back(mw.memIdx, pos);
      } else {
        if (it->second != pos) edges.emplace_back(it->second, pos);
        it->second = pos;
      }
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

BspPlacement buildPlacement(const CondPartSchedule& sched, const PlacementOptions& opts) {
  obs::ScopedPhaseTimer phaseTimer("placement");
  BspPlacement p;
  const size_t n = sched.parts.size();
  p.levels = sched.numLevels();
  if (n == 0) {
    p.threads = 1;
    p.threadCost.assign(1, 0);
    return p;
  }
  const unsigned T =
      std::max(1u, std::min(opts.threads, static_cast<unsigned>(n)));

  // Per-position cost estimate: caller-provided profile when its shape
  // matches, else static op count (+1 so empty partitions still weigh).
  std::vector<uint64_t> cost(n, 1);
  if (opts.partCost.size() == n) {
    for (size_t i = 0; i < n; i++) cost[i] = std::max<uint64_t>(1, opts.partCost[i]);
  } else {
    for (size_t i = 0; i < n; i++)
      cost[i] = 1 + static_cast<uint64_t>(sched.parts[i].ops.size());
  }
  uint64_t totalCost = 0;
  for (uint64_t c : cost) totalCost += c;

  auto edges = placementEdges(sched);
  p.totalEdges = edges.size();

  // Outgoing adjacency, built once; every edge points from a lower to a
  // higher schedule position, so ascending position order is a topological
  // order of the edge set (and descending order its reverse).
  std::vector<std::vector<int32_t>> succs(n);
  for (const auto& [u, v] : edges) {
    assert(u < v);
    succs[static_cast<size_t>(u)].push_back(v);
  }

  // Downstream critical-path cost of every position (itself included):
  // reverse-topological sweep, so one pass settles it.
  std::vector<uint64_t> depth(n, 0);
  for (size_t v = n; v-- > 0;) {
    uint64_t d = 0;
    for (int32_t s : succs[v]) d = std::max(d, depth[static_cast<size_t>(s)]);
    depth[v] = cost[v] + d;
  }

  // Critical (dominant) predecessor of every position: the in-edge on its
  // longest upstream path. Chains only extend along these edges — following
  // a non-critical edge would leave the true critical in-edge to a later
  // chain, turning it into a cross-thread barrier right on the critical
  // path. Forward topological sweep; ties to the lower position.
  std::vector<int32_t> critPred(n, -1);
  {
    std::vector<uint64_t> top(n, 0);  // longest-path cost ending AT v (excl.)
    for (const auto& [u, v] : edges) {
      const size_t su = static_cast<size_t>(u), sv = static_cast<size_t>(v);
      const uint64_t through = top[su] + cost[su];
      if (through > top[sv]) {
        top[sv] = through;
        critPred[sv] = u;
      }
    }
  }

  // Phase 1 — linear (chain) clustering along critical paths. A per-
  // position greedy placer fragments deep dependency chains whenever the
  // balance cap overrides affinity, and every fragmented chain edge becomes
  // a cross-thread barrier — on the SoC designs that degenerated to nearly
  // one super-step per levelization level. Instead, walk chains explicitly:
  // seed at the unassigned position with the greatest downstream depth (the
  // head of the residual critical path), then repeatedly absorb the
  // unassigned successor with the greatest depth. Everything inside a chain
  // is covered by same-thread program order, so only chain-to-chain edges
  // can ever cost a barrier. Chains end early at the balance cap so one
  // monster chain cannot swallow a whole thread's fair share (the split
  // costs a single cross edge, not one per level). Ties always break to the
  // lower schedule position — the placement is deterministic.
  const double cap =
      (static_cast<double>(totalCost) / static_cast<double>(T)) * (1.0 + opts.balanceSlack);
  std::vector<int32_t> seeds(n);
  for (size_t i = 0; i < n; i++) seeds[i] = static_cast<int32_t>(i);
  std::sort(seeds.begin(), seeds.end(), [&](int32_t a, int32_t b) {
    if (depth[static_cast<size_t>(a)] != depth[static_cast<size_t>(b)])
      return depth[static_cast<size_t>(a)] > depth[static_cast<size_t>(b)];
    return a < b;
  });
  std::vector<int32_t> chainOf(n, -1);
  std::vector<std::vector<int32_t>> chains;
  std::vector<uint64_t> chainCost;
  for (int32_t seed : seeds) {
    if (chainOf[static_cast<size_t>(seed)] != -1) continue;
    const int32_t c = static_cast<int32_t>(chains.size());
    chains.emplace_back();
    chainCost.push_back(0);
    int32_t cur = seed;
    for (;;) {
      chainOf[static_cast<size_t>(cur)] = c;
      chains[static_cast<size_t>(c)].push_back(cur);
      chainCost[static_cast<size_t>(c)] += cost[static_cast<size_t>(cur)];
      int32_t next = -1;
      for (int32_t s : succs[static_cast<size_t>(cur)])
        if (chainOf[static_cast<size_t>(s)] == -1 && critPred[static_cast<size_t>(s)] == cur &&
            (next == -1 || depth[static_cast<size_t>(s)] > depth[static_cast<size_t>(next)]))
          next = s;
      if (next == -1) break;
      if (static_cast<double>(chainCost[static_cast<size_t>(c)] +
                              cost[static_cast<size_t>(next)]) > cap)
        break;  // balance split: `next` seeds its own chain later
      cur = next;
    }
  }

  // Phase 2 — longest-processing-time assignment of whole chains to
  // threads: heaviest chain first onto the least-loaded thread (ties: the
  // chain starting at the lower position; the lower thread id).
  p.threadOf.assign(n, 0);
  p.threadCost.assign(T, 0);
  std::vector<int32_t> order(chains.size());
  for (size_t i = 0; i < order.size(); i++) order[i] = static_cast<int32_t>(i);
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    if (chainCost[static_cast<size_t>(a)] != chainCost[static_cast<size_t>(b)])
      return chainCost[static_cast<size_t>(a)] > chainCost[static_cast<size_t>(b)];
    return chains[static_cast<size_t>(a)].front() < chains[static_cast<size_t>(b)].front();
  });
  auto leastLoaded = [&] {
    unsigned best = 0;
    for (unsigned t = 1; t < T; t++)
      if (p.threadCost[t] < p.threadCost[best]) best = t;
    return best;
  };
  for (int32_t c : order) {
    const unsigned t = leastLoaded();
    for (int32_t v : chains[static_cast<size_t>(c)])
      p.threadOf[static_cast<size_t>(v)] = static_cast<int32_t>(t);
    p.threadCost[t] += chainCost[static_cast<size_t>(c)];
  }

  // Nonempty-thread guarantee: the balance cap all but ensures it, but a
  // degenerate cost distribution can still leave a thread idle. Donate the
  // last position of the fullest multi-position thread; n >= T makes this
  // terminate with every thread occupied.
  {
    std::vector<uint32_t> count(T, 0);
    for (size_t v = 0; v < n; v++) count[static_cast<size_t>(p.threadOf[v])]++;
    for (unsigned t = 0; t < T; t++) {
      while (count[t] == 0) {
        unsigned donor = 0;
        for (unsigned d = 1; d < T; d++)
          if (count[d] > count[donor]) donor = d;
        for (size_t v = n; v-- > 0;) {
          if (p.threadOf[v] == static_cast<int32_t>(donor)) {
            p.threadOf[v] = static_cast<int32_t>(t);
            p.threadCost[donor] -= cost[v];
            p.threadCost[t] += cost[v];
            count[donor]--;
            count[t]++;
            break;
          }
        }
      }
    }
  }
  p.threads = T;

  // Super-steps: the longest path where only cross-thread edges advance the
  // step. A same-thread edge is covered by local ascending-position order
  // inside the step; a cross-thread edge needs the barrier between steps,
  // so it forces step(u) < step(v). This is what coarsens 60+ levelization
  // levels into a handful of super-steps once chains are co-located.
  p.stepOf.assign(n, 0);
  int32_t maxStep = 0;
  for (const auto& [u, v] : edges) {
    const size_t su = static_cast<size_t>(u), sv = static_cast<size_t>(v);
    const int32_t need =
        p.stepOf[su] + (p.threadOf[su] != p.threadOf[sv] ? 1 : 0);
    if (need > p.stepOf[sv]) p.stepOf[sv] = need;
    if (p.stepOf[sv] > maxStep) maxStep = p.stepOf[sv];
    p.crossEdges += p.threadOf[su] != p.threadOf[sv] ? 1 : 0;
  }
  // Edge list is sorted by (u, v) ascending and u < v always, so stepOf[u]
  // is final before any edge out of u is processed... only if all edges
  // into u sort before edges out of u — true because edges into u have
  // second component u and first component < u, and std::pair ordering is
  // lexicographic on (first, second); an edge (a, u) with a < u sorts
  // before (u, b). A single pass therefore settles the longest path.

  p.steps.resize(static_cast<size_t>(maxStep) + 1);
  for (auto& s : p.steps) s.runs.resize(T);
  for (size_t v = 0; v < n; v++)
    p.steps[static_cast<size_t>(p.stepOf[v])]
        .runs[static_cast<size_t>(p.threadOf[v])]
        .push_back(static_cast<int32_t>(v));

  p.totalCost = totalCost;
  uint64_t maxLoad = 0;
  for (uint64_t c : p.threadCost) maxLoad = std::max(maxLoad, c);
  const double mean = static_cast<double>(totalCost) / static_cast<double>(T);
  p.loadImbalance = mean > 0 ? static_cast<double>(maxLoad) / mean : 1.0;
  return p;
}

}  // namespace essent::core
