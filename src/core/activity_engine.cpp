#include "core/activity_engine.h"

#include "obs/trace.h"
#include "sim/op_eval.h"

namespace essent::core {

using sim::ExecOp;
using sim::MemInfo;
using sim::RegInfo;

namespace {

std::shared_ptr<const CcssSchedule> buildCcssSchedule(const sim::CompiledDesign& design,
                                                      CondPartSchedule sched) {
  auto body = std::make_shared<CcssSchedule>();
  body->sched = std::move(sched);
  // Lay out the flat old-value save area, one slot span per output.
  uint32_t off = 0;
  body->partOutBase.reserve(body->sched.parts.size());
  for (const auto& part : body->sched.parts) {
    body->partOutBase.push_back(body->outputSaveOff.size());
    for (const auto& o : part.outputs) {
      body->outputSaveOff.push_back(off);
      off += design.layout.nwords[o.sig];
    }
  }
  body->saveWords = off;
  return body;
}

}  // namespace

std::shared_ptr<const CompiledCcss> CompiledCcss::compile(
    std::shared_ptr<const sim::CompiledDesign> design, CondPartSchedule sched) {
  auto cc = std::make_shared<CompiledCcss>();
  cc->body = buildCcssSchedule(*design, std::move(sched));
  cc->design = std::move(design);
  return cc;
}

std::shared_ptr<const CompiledCcss> CompiledCcss::compile(
    std::shared_ptr<const sim::CompiledDesign> design, const ScheduleOptions& opts) {
  CondPartSchedule sched = buildSchedule(Netlist::build(design->ir), opts);
  return compile(std::move(design), std::move(sched));
}

std::shared_ptr<const CompiledCcss> CompiledCcss::get(
    const std::shared_ptr<const sim::CompiledDesign>& design, const ScheduleOptions& opts) {
  // The key encodes every option the schedule build depends on.
  const PartitionOptions& po = opts.partition;
  std::string key = "ccss/cp=" + std::to_string(po.smallThreshold) +
                    "/pA=" + std::to_string(po.phaseSingleParent) +
                    "/pB=" + std::to_string(po.phaseSmallSiblings) +
                    "/pC=" + std::to_string(po.phaseAnySibling) +
                    "/mp=" + std::to_string(po.maxPasses) +
                    "/elide=" + std::to_string(opts.stateElision);
  // Only the design-free schedule body lives in the cache (see
  // CcssSchedule); the wrapper pairing it with the design is rebuilt per
  // call and is two shared_ptr copies.
  auto cc = std::make_shared<CompiledCcss>();
  cc->body = design->getOrBuildExt<CcssSchedule>(key, [&design, &opts]() {
    return buildCcssSchedule(*design,
                             buildSchedule(Netlist::build(design->ir), opts));
  });
  cc->design = design;
  return cc;
}

ActivityEngine::ActivityEngine(std::shared_ptr<const CompiledCcss> ccss)
    : Engine(ccss->design),
      ccss_(std::move(ccss)),
      sched_(ccss_->body->sched),
      outputSaveOff_(ccss_->body->outputSaveOff),
      partOutBase_(ccss_->body->partOutBase) {
  active_.assign(sched_.parts.size(), 1);
  prevInputs_.assign(layout_.totalWords, 0);
  outputSave_.assign(ccss_->body->saveWords, 0);
  firstCycle_ = true;
}

void ActivityEngine::resetState() {
  Engine::resetState();
  std::fill(active_.begin(), active_.end(), uint8_t{1});
  std::fill(prevInputs_.begin(), prevInputs_.end(), 0);
  std::fill(outputSave_.begin(), outputSave_.end(), 0);
  firstCycle_ = true;
  clearProfile();  // keep profile sums consistent with the zeroed stats_
}

void ActivityEngine::clearProfile() {
  prof_.profiledCycles = 0;
  prof_.activationsPerWindow.clear();
  std::fill(prof_.parts.begin(), prof_.parts.end(), PartitionProfile{});
}

void ActivityEngine::setProfiling(bool on) {
  profiling_ = on;
  if (on && prof_.parts.size() != sched_.parts.size())
    prof_.parts.assign(sched_.parts.size(), PartitionProfile{});
}

void ActivityEngine::setProfileWindow(uint32_t cycles) {
  prof_.windowCycles = cycles == 0 ? 1 : cycles;
  clearProfile();
}

void ActivityEngine::wake(const std::vector<int32_t>& parts) {
  for (int32_t p : parts) active_[static_cast<size_t>(p)] = 1;
  stats_.triggerSets += parts.size();
}

void ActivityEngine::applyRegWrite(const SchedRegWrite& rw) {
  const RegInfo& r = ir_->regs[static_cast<size_t>(rw.regIdx)];
  stats_.outputComparisons++;
  if (sigValsEqual(r.sig, r.next)) return;
  copySigWords(r.sig, r.next);
  // All readers already ran this cycle (ordering edges), so these flags
  // take effect next cycle — the paper's immediate-wakeup insight.
  wake(rw.wakeParts);
}

void ActivityEngine::applyMemWrite(const SchedMemWrite& mw) {
  const MemInfo& mem = ir_->mems[static_cast<size_t>(mw.memIdx)];
  const sim::MemWriter& w = mem.writers[static_cast<size_t>(mw.writerIdx)];
  if (state_.vals[layout_.offset[w.en]] == 0) return;
  if (state_.vals[layout_.offset[w.mask]] == 0) return;
  uint64_t addr = state_.vals[layout_.offset[w.addr]];
  if (addr >= mem.depth) return;
  uint32_t rw = state_.memRowWords[static_cast<size_t>(mw.memIdx)];
  uint32_t off = layout_.offset[w.data];
  auto& words = state_.memWords[static_cast<size_t>(mw.memIdx)];
  bool changed = false;
  stats_.outputComparisons++;
  for (uint32_t i = 0; i < rw; i++) {
    if (words[addr * rw + i] != state_.vals[off + i]) {
      words[addr * rw + i] = state_.vals[off + i];
      changed = true;
    }
  }
  if (changed) wake(mw.wakeParts);
}

void ActivityEngine::runPartition(size_t pos, const CondPart& part) {
  obs::TraceSpan span("part", obs::TraceCat::None, obs::TraceDetail::Partition,
                      "part", pos);
  stats_.partitionActivations++;
  const uint64_t wakesBefore = stats_.triggerSets;

  // Save old output values.
  size_t outBase = partOutBase_[pos];
  for (size_t oi = 0; oi < part.outputs.size(); oi++) {
    const PartOutput& o = part.outputs[oi];
    uint32_t so = outputSaveOff_[outBase + oi];
    uint32_t vo = layout_.offset[o.sig];
    for (uint32_t i = 0; i < layout_.nwords[o.sig]; i++)
      outputSave_[so + i] = state_.vals[vo + i];
  }

  // Full-cycle style straight-line evaluation of the partition's ops;
  // combinational-loop supernodes (always wholly contained in one
  // partition) iterate to convergence.
  if (!ir_->hasCombLoops()) {
    for (int32_t opIdx : part.ops)
      sim::evalExecOp(*ir_, layout_, state_, exec_[static_cast<size_t>(opIdx)]);
  } else {
    for (size_t k = 0; k < part.ops.size();) {
      int32_t opIdx = part.ops[k];
      int32_t super = ir_->superOf(static_cast<size_t>(opIdx));
      if (super < 0) {
        sim::evalExecOp(*ir_, layout_, state_, exec_[static_cast<size_t>(opIdx)]);
        k++;
        continue;
      }
      size_t j = k;
      while (j < part.ops.size() &&
             ir_->superOf(static_cast<size_t>(part.ops[j])) == super)
        j++;
      sim::evalSuperRange(*ir_, layout_, state_, exec_.data() + opIdx, j - k);
      k = j;
    }
  }
  stats_.opsEvaluated += part.ops.size();

  // Elided state updates (end of partition: every internal reader op has
  // already evaluated with the old value).
  for (const auto& rw : part.regWrites) applyRegWrite(rw);
  for (const auto& mw : part.memWrites) applyMemWrite(mw);

  // Push-direction triggering: wake consumers of changed outputs. The
  // change test is a branchless OR-reduction over the output's words.
  for (size_t oi = 0; oi < part.outputs.size(); oi++) {
    const PartOutput& o = part.outputs[oi];
    uint32_t so = outputSaveOff_[outBase + oi];
    uint32_t vo = layout_.offset[o.sig];
    uint64_t diff = 0;
    for (uint32_t i = 0; i < layout_.nwords[o.sig]; i++)
      diff |= outputSave_[so + i] ^ state_.vals[vo + i];
    stats_.outputComparisons++;
    if (diff != 0) wake(o.consumers);
  }

  if (profiling_) {
    PartitionProfile& pp = prof_.parts[pos];
    pp.activations++;
    pp.opsEvaluated += part.ops.size();
    pp.wakesIssued += stats_.triggerSets - wakesBefore;
  }
}

void ActivityEngine::sweepInputs() {
  // 1. External input change detection.
  if (!firstCycle_) {
    for (size_t i = 0; i < ir_->inputs.size(); i++) {
      int32_t in = ir_->inputs[i];
      if (!sigWordsEqual(in, prevInputs_.data() + layout_.offset[in]))
        wake(sched_.inputConsumers[i]);
    }
  }
  for (int32_t in : ir_->inputs) {
    uint32_t off = layout_.offset[in];
    for (uint32_t i = 0; i < layout_.nwords[in]; i++) prevInputs_[off + i] = state_.vals[off + i];
  }
  firstCycle_ = false;
}

void ActivityEngine::recordProfiledCycle(uint64_t activationsDelta) {
  size_t window = static_cast<size_t>(prof_.profiledCycles / prof_.windowCycles);
  if (prof_.activationsPerWindow.size() <= window)
    prof_.activationsPerWindow.resize(window + 1, 0);
  prof_.activationsPerWindow[window] += activationsDelta;
  prof_.profiledCycles++;
}

void ActivityEngine::finishCycle() {
  // 3. Side effects from stale-but-correct enables.
  firePrintsAndStops();

  // 4. Phase 2: non-elided state elements.
  for (const auto& rw : sched_.deferredRegs) applyRegWrite(rw);
  for (const auto& mw : sched_.deferredMemWrites) applyMemWrite(mw);

  stats_.cycles++;
}

void ActivityEngine::tick() {
  // Busy on its own thread; None when nested inside a pool.work span (a
  // SimFarm worker already owns this interval's attribution).
  obs::TraceSpan span("tick", obs::trace_detail::inPooledWork()
                                  ? obs::TraceCat::None
                                  : obs::TraceCat::Busy,
                      obs::TraceDetail::Wave, "cycle", stats_.cycles);
  sweepInputs();

  // 2. Partition sweep (static schedule; the per-partition flag check is
  //    the static overhead).
  stats_.partitionChecks += sched_.parts.size();
  const uint64_t activationsBefore = stats_.partitionActivations;
  for (size_t pos = 0; pos < sched_.parts.size(); pos++) {
    if (!active_[pos]) continue;
    active_[pos] = 0;  // deactivate for the next cycle first (Figure 1)
    runPartition(pos, sched_.parts[pos]);
  }
  if (profiling_) recordProfiledCycle(stats_.partitionActivations - activationsBefore);

  finishCycle();
}

double ActivityEngine::effectiveActivity() const {
  uint64_t total = static_cast<uint64_t>(ir_->ops.size()) * stats_.cycles;
  return total == 0 ? 0.0 : static_cast<double>(stats_.opsEvaluated) / static_cast<double>(total);
}

}  // namespace essent::core
