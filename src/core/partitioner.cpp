#include "core/partitioner.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "core/mffc.h"
#include "obs/phase_timer.h"

namespace essent::core {
namespace {

// Incremental partition merger.
//
// Maintains the contracted partition graph (with edge multiplicities),
// per-partition input-signal sets, and — crucially — an exact topological
// order of the live partitions, updated on every merge with a
// Pearce/Kelly-style local reorder. The exact order makes the external-path
// legality test both cheap and one-directional: with pos[A] < pos[B] no
// path B ->* A can exist, and any path A ->* B stays strictly inside the
// position window (pos[A], pos[B]), so the search is a window-bounded BFS.
// The nodes that BFS discovers are exactly the ones that must slide after
// the merged partition to keep the order valid.
class Merger {
 public:
  Merger(const Netlist& nl, std::vector<int32_t> partOf, int32_t numParts)
      : nl_(nl), partOf_(std::move(partOf)) {
    members_.resize(static_cast<size_t>(numParts));
    for (size_t n = 0; n < partOf_.size(); n++)
      members_[static_cast<size_t>(partOf_[n])].push_back(static_cast<int32_t>(n));
    alive_.assign(static_cast<size_t>(numParts), true);
    out_.resize(static_cast<size_t>(numParts));
    in_.resize(static_cast<size_t>(numParts));
    for (graph::NodeId v = 0; v < nl.g.numNodes(); v++) {
      for (graph::NodeId w : nl.g.outNeighbors(v)) {
        int32_t pv = partOf_[static_cast<size_t>(v)], pw = partOf_[static_cast<size_t>(w)];
        if (pv != pw) {
          out_[static_cast<size_t>(pv)][pw]++;
          in_[static_cast<size_t>(pw)][pv]++;
        }
      }
    }
    inputSigs_.resize(static_cast<size_t>(numParts));
    for (size_t n = 0; n < partOf_.size(); n++) {
      int32_t p = partOf_[n];
      for (int32_t sig : nl.nodeReads[n]) {
        int32_t prod = producerPart(sig);
        if (prod != p) inputSigs_[static_cast<size_t>(p)].insert(sig);
      }
    }
    initTopoOrder(numParts);
    visitStamp_.assign(static_cast<size_t>(numParts), 0);
  }

  int32_t producerPart(int32_t sig) const {
    int32_t node = nl_.producerOf[static_cast<size_t>(sig)];
    return node < 0 ? -1 : partOf_[static_cast<size_t>(node)];
  }

  bool alive(int32_t p) const { return alive_[static_cast<size_t>(p)]; }
  size_t size(int32_t p) const { return members_[static_cast<size_t>(p)].size(); }
  const std::unordered_map<int32_t, int32_t>& outNbrs(int32_t p) const {
    return out_[static_cast<size_t>(p)];
  }
  const std::unordered_map<int32_t, int32_t>& inNbrs(int32_t p) const {
    return in_[static_cast<size_t>(p)];
  }
  const std::unordered_set<int32_t>& inputs(int32_t p) const {
    return inputSigs_[static_cast<size_t>(p)];
  }
  size_t numAlive() const {
    size_t n = 0;
    for (bool a : alive_) n += a;
    return n;
  }
  std::vector<int32_t> alivePartitions() const {
    std::vector<int32_t> out;
    for (int32_t p : order_)
      if (p >= 0 && alive_[static_cast<size_t>(p)]) out.push_back(p);
    return out;
  }

  // Merges a and b if legal (no external path between them); returns false
  // when the merge would create a cycle. On success the surviving partition
  // is `a` (by id) regardless of order.
  bool tryMerge(int32_t a, int32_t b) {
    if (a == b || !alive(a) || !alive(b)) return false;
    int32_t low = pos_[static_cast<size_t>(a)] < pos_[static_cast<size_t>(b)] ? a : b;
    int32_t high = low == a ? b : a;
    int32_t hiPos = pos_[static_cast<size_t>(high)];
    int32_t loPos = pos_[static_cast<size_t>(low)];
    // Backward probe first: when every in-neighbor of high is either low
    // itself or sits before low, nothing inside the window reaches high, so
    // no external path low ->* C -> high can exist and the merged partition
    // can simply take low's slot — no forward sweep, no window slide. This
    // is every phase-A merge (the child has a single in-neighbor) and most
    // sibling merges, and turns them O(in-degree) instead of O(window).
    bool highOnlyFedFromBeforeLow = true;
    for (const auto& [pred, cnt] : in_[static_cast<size_t>(high)]) {
      (void)cnt;
      if (pred != low && pos_[static_cast<size_t>(pred)] > loPos) {
        highOnlyFedFromBeforeLow = false;
        break;
      }
    }
    if (highOnlyFedFromBeforeLow) {
      contract(a, b);
      order_[static_cast<size_t>(loPos)] = a;
      pos_[static_cast<size_t>(a)] = loPos;
      order_[static_cast<size_t>(hiPos)] = -1;  // hole
      return true;
    }
    // Window-bounded BFS from low. Any discovered intermediate with an edge
    // into high is an external path (the direct low->high edge is fine).
    stamp_++;
    std::vector<int32_t> forward;  // visited, excluding low, in BFS order
    std::vector<int32_t> stack;
    visitStamp_[static_cast<size_t>(low)] = stamp_;
    stack.push_back(low);
    while (!stack.empty()) {
      int32_t v = stack.back();
      stack.pop_back();
      for (const auto& [succ, cnt] : out_[static_cast<size_t>(v)]) {
        (void)cnt;
        if (succ == high) {
          if (v != low) return false;  // external path
          continue;
        }
        if (pos_[static_cast<size_t>(succ)] > hiPos) continue;  // exact pruning
        if (visitStamp_[static_cast<size_t>(succ)] == stamp_) continue;
        visitStamp_[static_cast<size_t>(succ)] = stamp_;
        forward.push_back(succ);
        stack.push_back(succ);
      }
    }
    mergeInternal(a, b, low, high, forward);
    return true;
  }

  // Finalizes into a compact Partitioning.
  Partitioning finalize() const {
    Partitioning out;
    std::vector<int32_t> compact(alive_.size(), -1);
    // Compact ids in topological order so downstream consumers get a
    // schedule-friendly numbering.
    for (int32_t p : order_) {
      if (p < 0 || !alive_[static_cast<size_t>(p)]) continue;
      compact[static_cast<size_t>(p)] = static_cast<int32_t>(out.members.size());
      out.members.push_back(members_[static_cast<size_t>(p)]);
    }
    out.partOf.resize(partOf_.size());
    for (size_t n = 0; n < partOf_.size(); n++)
      out.partOf[n] = compact[static_cast<size_t>(partOf_[n])];
    out.partGraph =
        graph::condense(nl_.g, out.partOf, static_cast<int32_t>(out.members.size()));
    auto order = out.partGraph.topoSort();
    if (!order)
      throw std::logic_error("partitioner invariant violated: partition graph is cyclic");
    out.schedule = std::move(*order);
    return out;
  }

  int64_t countCutEdges() const {
    int64_t cut = 0;
    for (graph::NodeId v = 0; v < nl_.g.numNodes(); v++)
      for (graph::NodeId w : nl_.g.outNeighbors(v))
        if (partOf_[static_cast<size_t>(v)] != partOf_[static_cast<size_t>(w)]) cut++;
    return cut;
  }

 private:
  const Netlist& nl_;
  std::vector<int32_t> partOf_;
  std::vector<std::vector<int32_t>> members_;
  std::vector<bool> alive_;
  std::vector<std::unordered_map<int32_t, int32_t>> out_, in_;
  std::vector<std::unordered_set<int32_t>> inputSigs_;
  // Exact topological order: order_[i] is the partition at position i (or -1
  // for a hole left by a merge); pos_ is its inverse.
  std::vector<int32_t> order_;
  std::vector<int32_t> pos_;
  std::vector<uint32_t> visitStamp_;
  uint32_t stamp_ = 0;

  void initTopoOrder(int32_t numParts) {
    pos_.assign(static_cast<size_t>(numParts), 0);
    order_.clear();
    order_.reserve(static_cast<size_t>(numParts));
    std::vector<int32_t> indeg(static_cast<size_t>(numParts), 0);
    for (int32_t p = 0; p < numParts; p++)
      indeg[static_cast<size_t>(p)] = static_cast<int32_t>(in_[static_cast<size_t>(p)].size());
    std::vector<int32_t> ready;
    for (int32_t p = 0; p < numParts; p++)
      if (indeg[static_cast<size_t>(p)] == 0) ready.push_back(p);
    while (!ready.empty()) {
      int32_t v = ready.back();
      ready.pop_back();
      pos_[static_cast<size_t>(v)] = static_cast<int32_t>(order_.size());
      order_.push_back(v);
      for (const auto& [w, cnt] : out_[static_cast<size_t>(v)]) {
        (void)cnt;
        if (--indeg[static_cast<size_t>(w)] == 0) ready.push_back(w);
      }
    }
    if (order_.size() != static_cast<size_t>(numParts))
      throw std::logic_error("initial partitioning is cyclic");
  }

  // Contracts b into a: members, contracted-graph edges, input-signal sets,
  // liveness. Does NOT touch the topological order — callers handle that.
  void contract(int32_t a, int32_t b) {
    auto& ma = members_[static_cast<size_t>(a)];
    auto& mb = members_[static_cast<size_t>(b)];
    for (int32_t n : mb) partOf_[static_cast<size_t>(n)] = a;
    ma.insert(ma.end(), mb.begin(), mb.end());
    mb.clear();
    mb.shrink_to_fit();

    auto relink = [&](std::vector<std::unordered_map<int32_t, int32_t>>& fwd,
                      std::vector<std::unordered_map<int32_t, int32_t>>& rev) {
      for (const auto& [nbr, cnt] : fwd[static_cast<size_t>(b)]) {
        rev[static_cast<size_t>(nbr)].erase(b);
        if (nbr == a) continue;
        fwd[static_cast<size_t>(a)][nbr] += cnt;
        rev[static_cast<size_t>(nbr)][a] += cnt;
      }
      fwd[static_cast<size_t>(b)].clear();
    };
    out_[static_cast<size_t>(a)].erase(b);
    in_[static_cast<size_t>(a)].erase(b);
    out_[static_cast<size_t>(b)].erase(a);
    in_[static_cast<size_t>(b)].erase(a);
    relink(out_, in_);
    relink(in_, out_);

    auto& ia = inputSigs_[static_cast<size_t>(a)];
    auto& ib = inputSigs_[static_cast<size_t>(b)];
    ia.insert(ib.begin(), ib.end());
    ib.clear();
    for (auto it = ia.begin(); it != ia.end();) {
      if (producerPart(*it) == a) it = ia.erase(it);
      else ++it;
    }
    alive_[static_cast<size_t>(b)] = false;
  }

  // Contracts b into a, placing the merged partition at high's position and
  // sliding `forward` (everything reachable from low inside the window)
  // directly after it. See the class comment for the validity argument.
  void mergeInternal(int32_t a, int32_t b, int32_t low, int32_t high,
                     const std::vector<int32_t>& forward) {
    contract(a, b);

    // --- order maintenance ---
    int32_t loPos = pos_[static_cast<size_t>(low)];
    int32_t hiPos = pos_[static_cast<size_t>(high)];
    // Partition the window [loPos, hiPos] into: untouched entries (keep
    // relative order), then the merged partition, then the forward set
    // (keep relative order), then one hole for the consumed slot.
    stamp_++;
    for (int32_t f : forward) visitStamp_[static_cast<size_t>(f)] = stamp_;
    std::vector<int32_t> untouched, movedForward;
    for (int32_t i = loPos; i <= hiPos; i++) {
      int32_t p = order_[static_cast<size_t>(i)];
      if (p < 0 || p == low || p == high) continue;
      if (visitStamp_[static_cast<size_t>(p)] == stamp_) movedForward.push_back(p);
      else untouched.push_back(p);
    }
    int32_t idx = loPos;
    auto place = [&](int32_t p) {
      order_[static_cast<size_t>(idx)] = p;
      if (p >= 0) pos_[static_cast<size_t>(p)] = idx;
      idx++;
    };
    for (int32_t p : untouched) place(p);
    place(a);  // merged partition sits at (what becomes) high's slot region
    for (int32_t p : movedForward) place(p);
    while (idx <= hiPos) place(-1);  // holes
  }
};

}  // namespace

Partitioning partitionNetlist(const Netlist& nl, const PartitionOptions& opts) {
  PartitionStats stats;

  int32_t numParts = 0;
  std::vector<int32_t> initial;
  {
    obs::ScopedPhaseTimer phaseTimer("mffc");
    initial = mffcDecompose(nl.g, &numParts);
  }
  stats.initialParts = static_cast<size_t>(numParts);

  Merger merger(nl, std::move(initial), numParts);

  // --- Phase A: merge single-parent partitions into their parents. ---
  // Worklist formulation: a partition can newly become single-parent only
  // when one of its in-neighbors was just contracted away, so instead of
  // re-sweeping every live partition until fixpoint (quadratic on deep
  // merge chains), each merge re-enqueues exactly the partitions whose
  // in-neighbor sets it changed — the merged survivor and its current
  // out-neighbors. The fixpoint reached is the same: single-parent
  // eligibility is monotone until the partition itself merges.
  if (opts.phaseSingleParent) {
    obs::ScopedPhaseTimer phaseTimer("merge-A");
    std::vector<int32_t> work = merger.alivePartitions();
    std::vector<uint8_t> queued(static_cast<size_t>(numParts), 0);
    for (int32_t p : work) queued[static_cast<size_t>(p)] = 1;
    std::vector<int32_t> nbrScratch;
    for (size_t head = 0; head < work.size(); head++) {
      int32_t p = work[head];
      queued[static_cast<size_t>(p)] = 0;
      if (!merger.alive(p)) continue;
      if (merger.inNbrs(p).size() != 1) continue;
      // All signals must come from the single parent: no source signals
      // (external inputs / register outputs) may feed p.
      bool pureSingleParent = true;
      for (int32_t sig : merger.inputs(p)) {
        if (merger.producerPart(sig) == -1) {
          pureSingleParent = false;
          break;
        }
      }
      if (!pureSingleParent) continue;
      int32_t parent = merger.inNbrs(p).begin()->first;
      // An in-neighbor set only changes for the merged survivor and for
      // p's former out-neighbors (they lose p and may collapse onto the
      // parent they already had) — those are the only re-check candidates.
      nbrScratch.clear();
      nbrScratch.push_back(parent);
      for (const auto& [nbr, cnt] : merger.outNbrs(p)) {
        (void)cnt;
        nbrScratch.push_back(nbr);
      }
      std::sort(nbrScratch.begin() + 1, nbrScratch.end());  // determinism
      // Single-parent merges cannot create cycles (an external path
      // parent->C->p would require a second in-neighbor of p), but they
      // still go through tryMerge for order maintenance.
      if (merger.tryMerge(parent, p)) {
        stats.mergesA++;
        for (int32_t q : nbrScratch) {
          if (!queued[static_cast<size_t>(q)]) {
            queued[static_cast<size_t>(q)] = 1;
            work.push_back(q);
          }
        }
      }
    }
  }
  stats.afterSingleParent = merger.numAlive();

  const uint32_t cp = opts.smallThreshold;
  auto isSmall = [&](int32_t p) { return merger.alive(p) && merger.size(p) < cp; };

  // --- Phase B: merge small partitions with small siblings, prioritizing
  // shared signals with the most small consumers (each such merge removes
  // the most cut edges at once, per the paper's heuristic). ---
  if (opts.phaseSmallSiblings && cp > 0) {
    obs::ScopedPhaseTimer phaseTimer("merge-B");
    for (uint32_t pass = 0; pass < opts.maxPasses; pass++) {
      // sig -> small partitions consuming it.
      std::unordered_map<int32_t, std::vector<int32_t>> consumersBySig;
      for (int32_t p : merger.alivePartitions()) {
        if (!isSmall(p)) continue;
        for (int32_t sig : merger.inputs(p)) consumersBySig[sig].push_back(p);
      }
      std::vector<std::pair<int32_t, std::vector<int32_t>>> groups;
      for (auto& [sig, parts] : consumersBySig)
        if (parts.size() > 1) groups.emplace_back(sig, std::move(parts));
      std::sort(groups.begin(), groups.end(), [](const auto& a, const auto& b) {
        if (a.second.size() != b.second.size()) return a.second.size() > b.second.size();
        return a.first < b.first;  // deterministic tie-break
      });

      size_t mergesThisPass = 0;
      for (auto& [sig, parts] : groups) {
        (void)sig;
        int32_t acc = -1;
        for (int32_t p : parts) {
          if (!isSmall(p)) continue;  // may have grown or died this pass
          if (acc == -1 || acc == p || !merger.alive(acc)) {
            acc = p;
            continue;
          }
          if (merger.tryMerge(acc, p)) {
            stats.mergesB++;
            mergesThisPass++;
            // Small-with-small only: once the group stops being small it
            // stops absorbing (keeps coarsening gradual in C_p).
            if (!isSmall(acc)) acc = -1;
          } else {
            stats.rejectedMerges++;
          }
        }
      }
      if (mergesThisPass == 0) break;
    }
  }
  stats.afterSmallSiblings = merger.numAlive();

  // --- Phase C: merge remaining small partitions with any sibling,
  // maximizing the fraction of input signals in common. ---
  if (opts.phaseAnySibling && cp > 0) {
    obs::ScopedPhaseTimer phaseTimer("merge-C");
    for (uint32_t pass = 0; pass < opts.maxPasses; pass++) {
      // sig -> all partitions consuming it (any size).
      std::unordered_map<int32_t, std::vector<int32_t>> consumersBySig;
      for (int32_t p : merger.alivePartitions())
        for (int32_t sig : merger.inputs(p)) consumersBySig[sig].push_back(p);

      size_t mergesThisPass = 0;
      for (int32_t p : merger.alivePartitions()) {
        if (!isSmall(p)) continue;
        // Score candidate siblings by shared input fraction (Jaccard).
        std::unordered_map<int32_t, uint32_t> shared;
        for (int32_t sig : merger.inputs(p)) {
          auto it = consumersBySig.find(sig);
          if (it == consumersBySig.end()) continue;
          for (int32_t c : it->second)
            if (c != p && merger.alive(c)) shared[c]++;
        }
        std::vector<std::pair<double, int32_t>> ranked;
        for (const auto& [c, cnt] : shared) {
          double uni =
              static_cast<double>(merger.inputs(p).size() + merger.inputs(c).size() - cnt);
          ranked.emplace_back(uni > 0 ? cnt / uni : 1.0, c);
        }
        std::sort(ranked.begin(), ranked.end(), [](const auto& x, const auto& y) {
          if (x.first != y.first) return x.first > y.first;
          return x.second < y.second;
        });
        for (const auto& [score, c] : ranked) {
          (void)score;
          if (merger.tryMerge(c, p)) {
            stats.mergesC++;
            mergesThisPass++;
            break;
          }
          stats.rejectedMerges++;
        }
      }
      if (mergesThisPass == 0) break;
    }
  }

  stats.cutEdges = merger.countCutEdges();
  for (int32_t p : merger.alivePartitions())
    if (merger.size(p) < cp) stats.smallRemaining++;

  Partitioning out = merger.finalize();
  stats.finalParts = out.numPartitions();
  out.stats = stats;
  return out;
}

Partitioning finePartitioning(const Netlist& nl) {
  Partitioning out;
  int32_t n = nl.g.numNodes();
  out.partOf.resize(static_cast<size_t>(n));
  out.members.resize(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; i++) {
    out.partOf[static_cast<size_t>(i)] = i;
    out.members[static_cast<size_t>(i)] = {i};
  }
  out.partGraph = graph::condense(nl.g, out.partOf, n);
  out.schedule = *out.partGraph.topoSort();
  out.stats.initialParts = out.stats.finalParts = static_cast<size_t>(n);
  return out;
}

Partitioning monolithicPartitioning(const Netlist& nl) {
  Partitioning out;
  int32_t n = nl.g.numNodes();
  out.partOf.assign(static_cast<size_t>(n), 0);
  out.members.resize(1);
  for (int32_t i = 0; i < n; i++) out.members[0].push_back(i);
  out.partGraph = graph::condense(nl.g, out.partOf, 1);
  out.schedule = {0};
  out.stats.initialParts = out.stats.finalParts = 1;
  return out;
}

}  // namespace essent::core
