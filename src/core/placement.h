// Static bulk-synchronous partition placement (Manticore-style, PAPERS.md).
//
// The wave-parallel engine paid 2 x levels barrier crossings per cycle
// (67-77 levels on tinysoc/systolic) because it synchronized at every
// levelization depth. This module moves all of that to compile time: it
// assigns every schedule position to a worker thread once (load-balanced by
// estimated or profiled cost, with dependency chains kept on one thread so
// cut edges are minimized) and then coarsens the levels into the minimum
// number of BSP *super-steps* the placement admits — a dependency edge that
// stays on one thread costs nothing (local program order covers it), only a
// cross-thread edge forces a barrier between its endpoints.
//
// Execution contract (enforced by the engine, verified by tests/test_placement):
//   * within a super-step each thread runs its assigned positions in
//     ascending schedule order (a valid topological order);
//   * a barrier separates consecutive super-steps;
//   * therefore for every dependency edge u -> v of the ordered partition
//     graph (combinational producer->consumer, elision ordering
//     reader->writer, same-memory elided-writer hazard chains):
//       - thread(u) != thread(v)  =>  step(u) <  step(v)   (barrier between)
//       - thread(u) == thread(v)  =>  step(u) <= step(v)   (local order)
// Those two rules are exactly what made the wave model race-free, so the
// BSP engine inherits the serial-identical EngineStats invariant: the same
// partitions activate, in an order indistinguishable from serial.
#pragma once

#include <cstdint>
#include <vector>

#include "core/schedule.h"

namespace essent::core {

struct PlacementOptions {
  // Worker threads to place onto; clamped to [1, numPartitions]. The
  // placement guarantees every returned thread has at least one partition
  // (its `threads` field is the *useful* width — callers clamp pools to it).
  unsigned threads = 1;
  // Optional per-schedule-position cost estimate (e.g. profiled
  // activations x ops). Empty = static estimate (op count).
  std::vector<uint64_t> partCost;
  // A chain (critical-path cluster) may grow to the ideal per-thread load
  // times (1 + slack) before the placer splits it for balance; each split
  // costs one cross-thread edge instead of fragmenting the whole chain.
  double balanceSlack = 0.20;
};

// One BSP super-step: per-thread run lists (schedule positions, ascending).
struct SuperStep {
  std::vector<std::vector<int32_t>> runs;  // [thread] -> positions
};

struct BspPlacement {
  unsigned threads = 1;               // useful width (every thread nonempty)
  std::vector<int32_t> threadOf;      // schedule position -> thread
  std::vector<int32_t> stepOf;        // schedule position -> super-step
  std::vector<SuperStep> steps;

  // Reporting (exported by core::placementReportJson).
  size_t totalEdges = 0;              // dependency edges considered
  size_t crossEdges = 0;              // edges crossing threads
  uint64_t totalCost = 0;
  std::vector<uint64_t> threadCost;   // per-thread summed cost
  double loadImbalance = 1.0;         // max(threadCost) / mean(threadCost)
  size_t levels = 0;                  // levelization depth it coarsened from

  size_t numSteps() const { return steps.size(); }
};

// Places `sched` onto opts.threads workers. Deterministic: same schedule and
// options yield the same placement on every call (no RNG, no timing).
BspPlacement buildPlacement(const CondPartSchedule& sched, const PlacementOptions& opts);

// The dependency edges the placement must respect, as (from, to) schedule
// positions — combinational output->consumer edges, elision ordering
// reader->writer edges, and same-memory elided-writer hazard chains.
// Deduplicated and sorted. Exposed so tests and tools can verify the
// super-step contract against the real edge set.
std::vector<std::pair<int32_t, int32_t>> placementEdges(const CondPartSchedule& sched);

}  // namespace essent::core
