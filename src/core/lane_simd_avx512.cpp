// AVX-512F wide kernels — compiled with -mavx512f (flag-gated in CMake) and
// entered only after __builtin_cpu_supports("avx512f"). Same op subset as
// the AVX2 kernel, over 512-bit vectors with mask-register compares; lane
// strides are multiples of 8 whenever lanes > 1.
#include <immintrin.h>

#include "core/lane_simd.h"
#include "sim/op_eval.h"

namespace essent::core {

using sim::ExecOp;
using sim::OpCode;

bool laneWideAvx512(const ExecOp& op, uint64_t* d, const uint64_t* a, const uint64_t* b,
                    const uint64_t* c, uint32_t n) {
  if (n % 8 != 0) return false;
  if (op.signedOp && op.code != OpCode::Not) return false;
  const __m512i dm = _mm512_set1_epi64(static_cast<long long>(sim::maskW(op.destW)));

#define AVX512_LOOP(EXPR)                                                 \
  do {                                                                    \
    for (uint32_t i = 0; i < n; i += 8) {                                 \
      const __m512i va = _mm512_loadu_si512(a + i);                       \
      const __m512i vb = _mm512_loadu_si512(b + i);                       \
      (void)vb;                                                           \
      const __m512i vr = (EXPR);                                          \
      _mm512_storeu_si512(d + i, _mm512_and_si512(vr, dm));               \
    }                                                                     \
  } while (0)

  switch (op.code) {
    case OpCode::And:
      AVX512_LOOP(_mm512_and_si512(va, vb));
      return true;
    case OpCode::Or:
      AVX512_LOOP(_mm512_or_si512(va, vb));
      return true;
    case OpCode::Xor:
      AVX512_LOOP(_mm512_xor_si512(va, vb));
      return true;
    case OpCode::Not:
      AVX512_LOOP(_mm512_xor_si512(va, _mm512_set1_epi64(-1)));
      return true;
    case OpCode::Add:
      AVX512_LOOP(_mm512_add_epi64(va, vb));
      return true;
    case OpCode::Sub:
      AVX512_LOOP(_mm512_sub_epi64(va, vb));
      return true;
    case OpCode::Eq:
      AVX512_LOOP(_mm512_maskz_set1_epi64(_mm512_cmpeq_epi64_mask(va, vb), 1));
      return true;
    case OpCode::Neq:
      AVX512_LOOP(_mm512_maskz_set1_epi64(_mm512_cmpneq_epi64_mask(va, vb), 1));
      return true;
    case OpCode::Mux:
      for (uint32_t i = 0; i < n; i += 8) {
        const __m512i sel = _mm512_loadu_si512(a + i);
        const __m512i tv = _mm512_loadu_si512(b + i);
        const __m512i fv = _mm512_loadu_si512(c + i);
        // mask bit set (sel != 0) -> true value.
        const __mmask8 nz = _mm512_test_epi64_mask(sel, sel);
        const __m512i vr = _mm512_mask_blend_epi64(nz, fv, tv);
        _mm512_storeu_si512(d + i, _mm512_and_si512(vr, dm));
      }
      return true;
    default:
      return false;
  }
#undef AVX512_LOOP
}

}  // namespace essent::core
