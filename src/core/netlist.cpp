#include "core/netlist.h"

#include <algorithm>

#include "obs/phase_timer.h"

namespace essent::core {

using sim::MemInfo;
using sim::Op;
using sim::OpCode;
using sim::SigKind;
using sim::SimIR;

std::vector<int32_t> Netlist::sinks() const {
  std::vector<int32_t> out;
  for (graph::NodeId n = 0; n < g.numNodes(); n++)
    if (g.outNeighbors(n).empty()) out.push_back(n);
  return out;
}

Netlist Netlist::build(const SimIR& ir) {
  obs::ScopedPhaseTimer phaseTimer("netlist");
  Netlist nl;
  nl.ir = &ir;

  auto addNode = [&](NodeKind kind, int32_t index, int32_t index2 = -1) {
    nl.nodes.push_back(NetNode{kind, index, index2});
    nl.g.addNode();
    nl.nodeReads.emplace_back();
    return static_cast<int32_t>(nl.nodes.size()) - 1;
  };

  // One node per op; a combinational-loop supernode's members share one
  // node (index = first member op, index2 = supernode id), so partitioning
  // always keeps the loop together and the partition graph stays acyclic.
  nl.nodeOfOp.assign(ir.ops.size(), -1);
  for (size_t i = 0; i < ir.ops.size(); i++) {
    if (nl.nodeOfOp[i] != -1) continue;
    int32_t super = ir.superOf(i);
    if (super < 0) {
      nl.nodeOfOp[i] = addNode(NodeKind::Op, static_cast<int32_t>(i));
    } else {
      int32_t node = addNode(NodeKind::Op, static_cast<int32_t>(i), super);
      for (int32_t m : ir.supers[static_cast<size_t>(super)])
        nl.nodeOfOp[static_cast<size_t>(m)] = node;
    }
  }

  nl.nodeOfRegWrite.assign(ir.regs.size(), -1);
  for (size_t r = 0; r < ir.regs.size(); r++)
    nl.nodeOfRegWrite[r] = addNode(NodeKind::RegWrite, static_cast<int32_t>(r));

  nl.nodeOfMemWrite.resize(ir.mems.size());
  for (size_t m = 0; m < ir.mems.size(); m++) {
    for (size_t w = 0; w < ir.mems[m].writers.size(); w++)
      nl.nodeOfMemWrite[m].push_back(
          addNode(NodeKind::MemWrite, static_cast<int32_t>(m), static_cast<int32_t>(w)));
  }

  std::vector<int32_t> printNodes, stopNodes, assertNodes;
  for (size_t p = 0; p < ir.prints.size(); p++)
    printNodes.push_back(addNode(NodeKind::Print, static_cast<int32_t>(p)));
  for (size_t s = 0; s < ir.stops.size(); s++)
    stopNodes.push_back(addNode(NodeKind::Stop, static_cast<int32_t>(s)));
  for (size_t a = 0; a < ir.asserts.size(); a++)
    assertNodes.push_back(addNode(NodeKind::Assert, static_cast<int32_t>(a)));

  // Producer of each signal: the node of its defining op; sources have -1.
  nl.producerOf.assign(ir.signals.size(), -1);
  for (size_t i = 0; i < ir.ops.size(); i++) nl.producerOf[ir.ops[i].dest] = nl.nodeOfOp[i];

  nl.sourceConsumers.resize(ir.signals.size());
  nl.regReaders.resize(ir.regs.size());
  nl.memReaders.resize(ir.mems.size());

  std::vector<int32_t> regIndexOfSig(ir.signals.size(), -1);
  for (size_t r = 0; r < ir.regs.size(); r++) regIndexOfSig[ir.regs[r].sig] = static_cast<int32_t>(r);

  // Records that `node` reads `sig`, creating a graph edge when the signal
  // is combinationally produced, or source bookkeeping otherwise.
  auto addRead = [&](int32_t node, int32_t sig) {
    auto& reads = nl.nodeReads[static_cast<size_t>(node)];
    if (std::find(reads.begin(), reads.end(), sig) != reads.end()) return;
    reads.push_back(sig);
    int32_t producer = nl.producerOf[static_cast<size_t>(sig)];
    if (producer >= 0) {
      nl.g.addEdge(producer, node);
    } else {
      nl.sourceConsumers[static_cast<size_t>(sig)].push_back(node);
      int32_t regIdx = regIndexOfSig[static_cast<size_t>(sig)];
      if (regIdx >= 0) nl.regReaders[static_cast<size_t>(regIdx)].push_back(node);
    }
  };

  for (size_t i = 0; i < ir.ops.size(); i++) {
    const Op& op = ir.ops[i];
    int32_t node = nl.nodeOfOp[i];
    int n = op.numArgs();
    for (int k = 0; k < n; k++) addRead(node, op.args[k]);
    if (op.code == OpCode::MemRead)
      nl.memReaders[static_cast<size_t>(op.imm0)].push_back(node);
  }
  for (size_t r = 0; r < ir.regs.size(); r++) addRead(nl.nodeOfRegWrite[r], ir.regs[r].next);
  for (size_t m = 0; m < ir.mems.size(); m++) {
    for (size_t w = 0; w < ir.mems[m].writers.size(); w++) {
      int32_t node = nl.nodeOfMemWrite[m][w];
      const auto& wr = ir.mems[m].writers[w];
      addRead(node, wr.addr);
      addRead(node, wr.en);
      addRead(node, wr.data);
      addRead(node, wr.mask);
    }
  }
  for (size_t p = 0; p < ir.prints.size(); p++) {
    addRead(printNodes[p], ir.prints[p].en);
    for (int32_t a : ir.prints[p].args) addRead(printNodes[p], a);
  }
  for (size_t s = 0; s < ir.stops.size(); s++) addRead(stopNodes[s], ir.stops[s].en);
  for (size_t a = 0; a < ir.asserts.size(); a++) {
    addRead(assertNodes[a], ir.asserts[a].pred);
    addRead(assertNodes[a], ir.asserts[a].en);
  }

  return nl;
}

}  // namespace essent::core
