// The novel acyclic graph partitioner (paper §IV).
//
// Bootstraps from an MFFC decomposition, then greedily merges partitions in
// three phases (Figure 4):
//   A. merge single-parent partitions into their parents (always legal);
//   B. merge small partitions (< C_p nodes) with small siblings, prioritized
//      by the number of cut edges a merge eliminates;
//   C. merge remaining small partitions with any sibling, maximizing the
//      fraction of input signals in common.
// Sibling merges are validated with the external-path test (extending
// Herrmann et al.): partitions A and B may merge iff no path between them
// traverses a third partition, in either direction — otherwise the merge
// would create a cycle in the partition graph (Figure 2) and destroy the
// singular static schedule.
//
// C_p is the single, design-insensitive tuning parameter; the paper selects
// C_p = 8 (reproduced by bench_fig6_cp_sweep).
#pragma once

#include <cstdint>
#include <vector>

#include "core/netlist.h"
#include "graph/graph.h"

namespace essent::core {

struct PartitionOptions {
  // C_p: partitions smaller than this are "small" and get merged in
  // phases B/C. 0 disables both sibling phases (pure MFFC + phase A).
  uint32_t smallThreshold = 8;
  bool phaseSingleParent = true;
  bool phaseSmallSiblings = true;
  bool phaseAnySibling = true;
  // Fixpoint bound for the sibling phases.
  uint32_t maxPasses = 8;
};

struct PartitionStats {
  size_t initialParts = 0;    // after MFFC decomposition
  size_t afterSingleParent = 0;
  size_t afterSmallSiblings = 0;
  size_t finalParts = 0;
  size_t mergesA = 0;
  size_t mergesB = 0;
  size_t mergesC = 0;
  size_t rejectedMerges = 0;  // failed the external-path test
  size_t smallRemaining = 0;  // partitions still below C_p at the end
  int64_t cutEdges = 0;       // node-level edges crossing partitions
};

struct Partitioning {
  std::vector<int32_t> partOf;                 // netlist node -> partition id
  std::vector<std::vector<int32_t>> members;   // partition -> member nodes
  graph::DiGraph partGraph;                    // acyclic partition graph
  std::vector<int32_t> schedule;               // topological order of partitions
  PartitionStats stats;

  size_t numPartitions() const { return members.size(); }
};

// Runs the full pipeline: MFFC decomposition + merge phases + condensation.
// The result's partGraph is guaranteed acyclic (validated internally;
// throws std::logic_error if the invariant is ever violated).
Partitioning partitionNetlist(const Netlist& nl, const PartitionOptions& opts = {});

// Degenerate partitionings used by benches/tests for comparison: one node
// per partition ("fine") and all nodes in one partition ("monolithic").
Partitioning finePartitioning(const Netlist& nl);
Partitioning monolithicPartitioning(const Netlist& nl);

}  // namespace essent::core
