// Batch simulation farm: N concurrent engine instances sharing ONE compiled
// schedule.
//
// The paper's simulators are routinely run as batches — regression suites,
// parameter sweeps, stimulus fuzzing — where every instance executes the
// same design. Recompiling the design (or even re-deriving the CCSS
// schedule) per instance wastes the dominant share of startup time, and
// per-instance copies of the immutable structure waste cache footprint at
// runtime. SimFarm exploits the structure/state split: every instance is
// constructed from the same shared sim::CompiledDesign through
// sim::makeEngine, so the IR, layout, exec stream, and the kind-specific
// derived structure (CCSS schedule + save-area layout, event groups,
// hot-op stream) exist exactly once per farm, while each instance owns only
// its mutable SimState and wake flags.
//
// Scheduling: instances are dispatched over a persistent
// support::ThreadPool. Workers claim whole jobs from a shared atomic cursor
// (dynamic self-scheduling), so a worker that finishes a short job
// immediately steals the next unclaimed one — long jobs never serialize the
// tail the way a static round-robin split would.
//
// Determinism: the shared structure is immutable and every mutable word
// (signal values, memories, wake flags, stats) is per-instance, so each
// instance's results are bit-identical to a solo run of the same engine
// kind with the same stimulus, regardless of worker count or claim order
// (tests/test_api.cpp locks this in under TSan).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/engine_factory.h"
#include "sim/harness.h"
#include "support/resource_guard.h"

namespace essent::core {

// One simulation instance: how long to run, how to drive it.
struct FarmJob {
  std::string name;        // label carried into the per-instance result
  uint64_t maxCycles = 0;  // tick budget (stops early on a fired stop())
  // Optional one-time setup before cycle 0 (pokes, workloads::loadProgram).
  std::function<void(sim::Engine&)> init;
  // Optional per-cycle input driver, same contract as sim::runEngine.
  sim::StimulusFn stimulus;
};

struct FarmInstanceResult {
  size_t index = 0;   // position in the submitted job list
  std::string name;
  uint64_t cycles = 0;
  bool stopped = false;
  int exitCode = 0;
  double seconds = 0.0;  // this instance's own run time
  sim::EngineStats stats;
  // CCSS kinds only (0 otherwise): fraction of partition evaluations
  // actually performed, the paper's effective activity factor.
  double effectiveActivity = 0.0;
  std::string printOutput;
  // Final value of every output port, as (name, hex) — enough to check a
  // farm run bit-identical against solo runs without keeping engines alive.
  std::vector<std::pair<std::string, std::string>> outputs;
  // Non-empty if the instance threw instead of completing; all other
  // fields besides index/name are then meaningless.
  std::string error;
};

// Lane-farm bookkeeping (FarmOptions::kind == EngineKind::Lane only; zeroed
// otherwise). A lane farm chunks the batch into groups of
// EngineOptions::lanes jobs, runs each group on one core::LaneEngine (every
// ExecOp decoded once for all lanes), and falls back to scalar CCSS engines
// for the remainder jobs and for any lane that errors.
struct FarmLaneStats {
  unsigned lanes = 0;           // configured lane-group width
  std::string simdBackend;      // resolved tier ("avx512"/"avx2"/"portable")
  uint64_t groups = 0;          // lane groups executed
  uint64_t scalarFallbacks = 0; // jobs run on scalar engines (remainder + errors)
  // Summed over groups: partitions executed / skipped at group granularity,
  // and per-lane skips inside executed partitions (lanes riding along
  // inactive — the masked-activity composition at work).
  uint64_t groupPartitionRuns = 0;
  uint64_t groupPartitionSkips = 0;
  uint64_t maskedLaneSkips = 0;
};

struct FarmReport {
  sim::EngineKind kind{};
  unsigned workers = 0;       // actual farm worker lanes used
  double wallSeconds = 0.0;   // whole-batch wall clock (dispatch to join)
  uint64_t totalCycles = 0;   // sum over instances
  double instancesPerSec = 0.0;
  double aggregateCyclesPerSec = 0.0;  // totalCycles / wallSeconds
  // Graceful-degradation messages from engine construction (thread
  // clamping etc.), deduplicated across instances.
  std::vector<std::string> warnings;
  // Distribution of per-instance wall times (ns) across the batch —
  // p50/p99 here are the daemon-facing latency numbers (Open item 3).
  obs::LatencySnapshot instanceLatency;
  // Lane-farm counters (kind == Lane only).
  FarmLaneStats lane;
  std::vector<FarmInstanceResult> instances;  // one per job, in job order

  bool allOk() const {
    for (const FarmInstanceResult& r : instances)
      if (!r.error.empty()) return false;
    return true;
  }
};

struct FarmOptions {
  // Engine kind every instance runs (Codegen is rejected: out of process).
  // EngineKind::Lane switches the farm into lane-group mode: workers claim
  // blocks of EngineOptions::lanes jobs and run each block on one SIMD
  // core::LaneEngine; remainder jobs and errored lanes fall back to scalar
  // CCSS engines. Results stay bit-identical to solo runs either way.
  sim::EngineKind kind = sim::EngineKind::Ccss;
  // Per-instance engine options (schedule knobs, profiling). The warnings
  // pointer is ignored — degradation messages land in FarmReport::warnings.
  // CcssPar instances each own a private wave pool of `engine.threads`
  // lanes on top of the farm workers; that multiplies threads, so prefer
  // serial kinds inside a farm unless instances outnumber cores by little.
  sim::EngineOptions engine;
  // Farm worker lanes (including the calling thread); 0 = the
  // support::ThreadPool::defaultThreadCount() heuristic ($ESSENT_THREADS,
  // else hardware concurrency). Clamped to the job count at run time.
  unsigned workers = 0;
  // Optional SHARED wall-clock/resource budget across every instance. The
  // guard's deadline runs from guard construction, so N concurrent
  // instances all stop within one check interval of the same wall moment —
  // a per-instance deadline would let the batch overshoot N-fold. Instances
  // cut off mid-run record an "E0504: ..." error; the guard must outlive
  // run(). Checked every `guardCheckInterval` cycles per instance.
  const support::ResourceGuard* guard = nullptr;
  uint32_t guardCheckInterval = 1024;
};

class SimFarm {
 public:
  // Throws std::invalid_argument for FarmOptions::kind == Codegen.
  explicit SimFarm(std::shared_ptr<const sim::CompiledDesign> design, FarmOptions opts = {});

  // Runs every job to completion and returns the aggregate report.
  // Blocking; reentrant per farm object is not supported (one run at a
  // time), but concurrent SimFarms over the same design are fine — the
  // design's extension cache is thread-safe.
  FarmReport run(const std::vector<FarmJob>& jobs);

  const std::shared_ptr<const sim::CompiledDesign>& design() const { return design_; }
  const FarmOptions& options() const { return opts_; }

 private:
  FarmInstanceResult runOne(size_t index, const FarmJob& job, sim::EngineKind kind,
                            std::vector<std::string>& warnings) const;
  void runLaneGroup(size_t base, unsigned count, const std::vector<FarmJob>& jobs,
                    FarmReport& report, std::vector<std::string>& warnings,
                    std::mutex& mergeMu) const;

  std::shared_ptr<const sim::CompiledDesign> design_;
  FarmOptions opts_;
};

}  // namespace essent::core
