#include "core/sim_farm.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>

#include "core/activity_engine.h"
#include "obs/trace.h"
#include "support/threadpool.h"

namespace essent::core {

SimFarm::SimFarm(std::shared_ptr<const sim::CompiledDesign> design, FarmOptions opts)
    : design_(std::move(design)), opts_(std::move(opts)) {
  if (!design_) throw std::invalid_argument("SimFarm requires a compiled design");
  if (opts_.kind == sim::EngineKind::Codegen)
    throw std::invalid_argument(
        "SimFarm cannot run engine kind 'codegen' (out-of-process simulator)");
}

FarmInstanceResult SimFarm::runOne(size_t index, const FarmJob& job,
                                   std::vector<std::string>& warnings) const {
  FarmInstanceResult r;
  r.index = index;
  r.name = job.name.empty() ? "job" + std::to_string(index) : job.name;
  sim::EngineOptions eo = opts_.engine;
  eo.warnings = &warnings;  // per-instance vector; merged by the caller
  std::unique_ptr<sim::Engine> eng = sim::makeEngine(opts_.kind, design_, eo);
  if (job.init) job.init(*eng);
  sim::RunResult run = sim::runEngine(*eng, job.maxCycles, job.stimulus);
  r.cycles = run.cycles;
  r.stopped = run.stopped;
  r.exitCode = run.exitCode;
  r.seconds = run.seconds;
  r.stats = run.stats;
  if (auto* act = dynamic_cast<const ActivityEngine*>(eng.get()))
    r.effectiveActivity = act->effectiveActivity();
  r.printOutput = eng->printOutput();
  const sim::SimIR& ir = design_->ir;
  r.outputs.reserve(ir.outputs.size());
  for (int32_t o : ir.outputs)
    r.outputs.emplace_back(ir.signals[static_cast<size_t>(o)].name,
                           eng->peekSigBV(o).toHexString());
  return r;
}

FarmReport SimFarm::run(const std::vector<FarmJob>& jobs) {
  FarmReport report;
  report.kind = opts_.kind;
  if (jobs.empty()) return report;

  // Build the kind-specific derived structure (schedule, event groups, ...)
  // once, up front, by constructing and discarding one engine: otherwise the
  // first claimed instance on every worker would serialize on the extension
  // cache mutex inside the timed region.
  {
    sim::EngineOptions eo = opts_.engine;
    eo.warnings = nullptr;
    sim::makeEngine(opts_.kind, design_, eo);
  }

  unsigned workers = opts_.workers == 0 ? support::ThreadPool::defaultThreadCount()
                                        : opts_.workers;
  workers = std::max(1u, std::min<unsigned>(workers, static_cast<unsigned>(jobs.size())));
  report.workers = workers;
  report.instances.resize(jobs.size());

  std::atomic<size_t> cursor{0};
  std::mutex mergeMu;  // guards report.warnings (instances are index-disjoint)

  // Per-batch wall-time histogram (snapshotted into the report) plus the
  // process-wide aggregates that merge into --stats-json. The references
  // are resolved once, outside the claim loop; recording is lock-free.
  obs::LatencyHistogram batchHist;
  obs::LatencyHistogram& globalHist =
      obs::MetricsRegistry::global().histogram("farm.instance_wall_ns");
  obs::LatencyHistogram& claimHist =
      obs::MetricsRegistry::global().histogram("farm.claim_wait_ns");

  auto t0 = std::chrono::steady_clock::now();
  auto body = [&](unsigned) {
    for (;;) {
      size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) break;
      claimHist.record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
      obs::traceInstant("farm.claim", "instance", i);
      obs::TraceSpan span("farm.instance", obs::TraceCat::None,
                          obs::TraceDetail::Phase, "instance", i);
      std::vector<std::string> warnings;
      // ThreadPool tasks must not throw; trap per-instance failures into
      // the result so one bad job cannot take down the batch.
      try {
        report.instances[i] = runOne(i, jobs[i], warnings);
        uint64_t wallNs =
            static_cast<uint64_t>(report.instances[i].seconds * 1e9);
        batchHist.record(wallNs);
        globalHist.record(wallNs);
      } catch (const std::exception& e) {
        report.instances[i].index = i;
        report.instances[i].name =
            jobs[i].name.empty() ? "job" + std::to_string(i) : jobs[i].name;
        report.instances[i].error = e.what();
      }
      if (!warnings.empty()) {
        std::lock_guard<std::mutex> lock(mergeMu);
        for (std::string& w : warnings)
          if (std::find(report.warnings.begin(), report.warnings.end(), w) ==
              report.warnings.end())
            report.warnings.push_back(std::move(w));
      }
    }
  };

  if (workers == 1) {
    // No pool: keeps single-worker farms usable from pool tasks. The farm
    // records the Busy span a pool worker would have, unless a pool.work
    // span above us already owns this interval.
    obs::TraceSession* s = obs::TraceSession::current();
    if (s && s->wants(obs::TraceDetail::Wave)) {
      bool nested = obs::trace_detail::inPooledWork();
      uint64_t w0 = s->nowNs();
      if (!nested) obs::trace_detail::setInPooledWork(true);
      body(0);
      if (!nested) obs::trace_detail::setInPooledWork(false);
      s->complete("farm.work", w0,
                  nested ? obs::TraceCat::None : obs::TraceCat::Busy);
    } else {
      body(0);
    }
  } else {
    support::ThreadPool pool(workers);
    report.workers = pool.numThreads();
    pool.run(body);
  }
  report.wallSeconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  report.instanceLatency = batchHist.snapshot();

  for (const FarmInstanceResult& r : report.instances) report.totalCycles += r.cycles;
  if (report.wallSeconds > 0) {
    report.instancesPerSec = static_cast<double>(jobs.size()) / report.wallSeconds;
    report.aggregateCyclesPerSec =
        static_cast<double>(report.totalCycles) / report.wallSeconds;
  }
  return report;
}

}  // namespace essent::core
