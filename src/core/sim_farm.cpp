#include "core/sim_farm.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>

#include "core/activity_engine.h"
#include "core/lane_engine.h"
#include "obs/trace.h"
#include "support/threadpool.h"

namespace essent::core {

namespace {

ScheduleOptions farmScheduleOptions(const sim::EngineOptions& eo) {
  ScheduleOptions so;
  so.partition.smallThreshold = eo.partitionSmallThreshold;
  so.stateElision = eo.stateElision;
  return so;
}

unsigned clampLanes(unsigned lanes) { return lanes < 1 ? 1 : (lanes > 64 ? 64 : lanes); }

}  // namespace

SimFarm::SimFarm(std::shared_ptr<const sim::CompiledDesign> design, FarmOptions opts)
    : design_(std::move(design)), opts_(std::move(opts)) {
  if (!design_) throw std::invalid_argument("SimFarm requires a compiled design");
  if (opts_.kind == sim::EngineKind::Codegen)
    throw std::invalid_argument(
        "SimFarm cannot run engine kind 'codegen' (out-of-process simulator)");
}

FarmInstanceResult SimFarm::runOne(size_t index, const FarmJob& job, sim::EngineKind kind,
                                   std::vector<std::string>& warnings) const {
  FarmInstanceResult r;
  r.index = index;
  r.name = job.name.empty() ? "job" + std::to_string(index) : job.name;
  sim::EngineOptions eo = opts_.engine;
  eo.warnings = &warnings;  // per-instance vector; merged by the caller
  std::unique_ptr<sim::Engine> eng = sim::makeEngine(kind, design_, eo);
  if (job.init) job.init(*eng);
  sim::StimulusFn stim = job.stimulus;
  if (opts_.guard) {
    // Thread the shared wall budget into the run loop: the deadline fires
    // inside the instance (ResourceExhausted propagates to the trap site),
    // not merely after the whole batch returns.
    const support::ResourceGuard* guard = opts_.guard;
    const uint32_t interval = std::max(1u, opts_.guardCheckInterval);
    sim::StimulusFn inner = std::move(stim);
    stim = [guard, interval, inner](sim::Engine& e, uint64_t c) {
      if (c % interval == 0) guard->checkDeadline();
      if (inner) inner(e, c);
    };
  }
  sim::RunResult run = sim::runEngine(*eng, job.maxCycles, stim);
  r.cycles = run.cycles;
  r.stopped = run.stopped;
  r.exitCode = run.exitCode;
  r.seconds = run.seconds;
  r.stats = run.stats;
  if (auto* act = dynamic_cast<const ActivityEngine*>(eng.get()))
    r.effectiveActivity = act->effectiveActivity();
  r.printOutput = eng->printOutput();
  const sim::SimIR& ir = design_->ir;
  r.outputs.reserve(ir.outputs.size());
  for (int32_t o : ir.outputs)
    r.outputs.emplace_back(ir.signals[static_cast<size_t>(o)].name,
                           eng->peekSigBV(o).toHexString());
  return r;
}

// One claimed lane block: `count` jobs starting at `base` run on a single
// LaneEngine — each ExecOp decoded once per instruction for all lanes, each
// lane bit-identical to a solo scalar run. Lanes leave the live mask when
// they stop or exhaust their cycle budget; lanes that error (init, stimulus,
// or a group-wide tick failure) are retired and their jobs re-run on scalar
// CCSS engines so the batch result never depends on the SIMD path working.
void SimFarm::runLaneGroup(size_t base, unsigned count, const std::vector<FarmJob>& jobs,
                           FarmReport& report, std::vector<std::string>& warnings,
                           std::mutex& mergeMu) const {
  std::vector<uint8_t> failed(count, 0);
  std::vector<std::string> failReason(count);
  double groupWall = 0.0;
  uint64_t groups = 0;

  try {
    LaneEngine group(CompiledCcss::get(design_, farmScheduleOptions(opts_.engine)), count);
    groups = 1;
    for (unsigned l = 0; l < count; l++) {
      const FarmJob& job = jobs[base + l];
      if (!job.init) continue;
      try {
        job.init(group.lane(l));
      } catch (const std::exception& e) {
        failed[l] = 1;
        failReason[l] = e.what();
        group.retireLane(l);
      }
    }

    auto g0 = std::chrono::steady_clock::now();
    const uint32_t guardInterval = std::max(1u, opts_.guardCheckInterval);
    for (uint64_t c = 0; group.liveMask() != 0; c++) {
      if (opts_.guard && c % guardInterval == 0) {
        try {
          opts_.guard->checkDeadline();
        } catch (const support::ResourceExhausted& e) {
          // Shared budget exhausted: hard-fail every live lane (failed == 2
          // means "no scalar retry" — a re-run would just blow the same
          // deadline again after paying engine construction).
          for (unsigned l = 0; l < count; l++)
            if (group.laneLive(l)) {
              failed[l] = 2;
              failReason[l] = e.code() + ": " + e.what();
              group.retireLane(l);
            }
          break;
        }
      }
      // Budget check first, mirroring sim::runEngine's loop condition: a
      // lane ticks exactly min(maxCycles, cycles-until-stop) times.
      for (unsigned l = 0; l < count; l++)
        if (group.laneLive(l) && c >= jobs[base + l].maxCycles) group.retireLane(l);
      if (group.liveMask() == 0) break;
      for (unsigned l = 0; l < count; l++) {
        const FarmJob& job = jobs[base + l];
        if (!group.laneLive(l) || !job.stimulus) continue;
        try {
          job.stimulus(group.lane(l), c);
        } catch (const std::exception& e) {
          failed[l] = 1;
          failReason[l] = e.what();
          group.retireLane(l);
        }
      }
      if (group.liveMask() == 0) break;
      try {
        group.tick();
      } catch (const std::exception& e) {
        // A tick failure is group-wide (the lanes advance together): every
        // lane still in flight falls back to a scalar re-run.
        for (unsigned l = 0; l < count; l++)
          if (group.laneLive(l)) {
            failed[l] = 1;
            failReason[l] = e.what();
            group.retireLane(l);
          }
      }
    }
    groupWall = std::chrono::duration<double>(std::chrono::steady_clock::now() - g0).count();

    const sim::SimIR& ir = design_->ir;
    for (unsigned l = 0; l < count; l++) {
      if (failed[l]) continue;
      const size_t index = base + l;
      sim::Engine& lane = group.lane(l);
      FarmInstanceResult& r = report.instances[index];
      r.index = index;
      r.name = jobs[index].name.empty() ? "job" + std::to_string(index) : jobs[index].name;
      r.cycles = lane.cycleCount();
      r.stopped = lane.stopped();
      r.exitCode = lane.exitCode();
      // Wall time is shared by construction; attribute an even split so
      // batch latency percentiles stay meaningful.
      r.seconds = count > 0 ? groupWall / count : groupWall;
      r.stats = lane.stats();
      r.effectiveActivity = group.laneEffectiveActivity(l);
      r.printOutput = lane.printOutput();
      r.outputs.reserve(ir.outputs.size());
      for (int32_t o : ir.outputs)
        r.outputs.emplace_back(ir.signals[static_cast<size_t>(o)].name,
                               lane.peekSigBV(o).toHexString());
    }

    std::lock_guard<std::mutex> lock(mergeMu);
    if (report.lane.simdBackend.empty()) report.lane.simdBackend = group.simdBackend();
    report.lane.groups += groups;
    report.lane.groupPartitionRuns += group.groupPartitionRuns();
    report.lane.groupPartitionSkips += group.groupPartitionSkips();
    report.lane.maskedLaneSkips += group.maskedLaneSkips();
  } catch (const std::exception& e) {
    // Group construction failed entirely: every job falls back.
    for (unsigned l = 0; l < count; l++)
      if (!failed[l]) {
        failed[l] = 1;
        failReason[l] = e.what();
      }
  }

  obs::MetricCounter& fallbackCounter =
      obs::MetricsRegistry::global().counter("farm.lane_scalar_fallbacks");
  for (unsigned l = 0; l < count; l++) {
    if (!failed[l]) continue;
    const size_t index = base + l;
    if (failed[l] == 2) {
      // Deadline-killed by the shared guard: record the structured error
      // without a scalar retry.
      report.instances[index].index = index;
      report.instances[index].name =
          jobs[index].name.empty() ? "job" + std::to_string(index) : jobs[index].name;
      report.instances[index].error = failReason[l];
      continue;
    }
    fallbackCounter.add(1);
    {
      std::lock_guard<std::mutex> lock(mergeMu);
      report.lane.scalarFallbacks++;
    }
    try {
      report.instances[index] = runOne(index, jobs[index], sim::EngineKind::Ccss, warnings);
    } catch (const support::ResourceExhausted& e) {
      report.instances[index].index = index;
      report.instances[index].name =
          jobs[index].name.empty() ? "job" + std::to_string(index) : jobs[index].name;
      report.instances[index].error = e.code() + ": " + e.what();
    } catch (const std::exception& e) {
      report.instances[index].index = index;
      report.instances[index].name =
          jobs[index].name.empty() ? "job" + std::to_string(index) : jobs[index].name;
      report.instances[index].error =
          failReason[l].empty() ? e.what() : failReason[l] + "; scalar retry: " + e.what();
    }
  }
}

FarmReport SimFarm::run(const std::vector<FarmJob>& jobs) {
  FarmReport report;
  report.kind = opts_.kind;
  if (jobs.empty()) return report;

  // Build the kind-specific derived structure (schedule, event groups, ...)
  // once, up front, by constructing and discarding one engine: otherwise the
  // first claimed instance on every worker would serialize on the extension
  // cache mutex inside the timed region.
  {
    sim::EngineOptions eo = opts_.engine;
    eo.warnings = nullptr;
    sim::makeEngine(opts_.kind, design_, eo);
  }

  // Work units the claim cursor walks: one unit per job, or — for
  // EngineKind::Lane — one unit per lane BLOCK of `engine.lanes` jobs, with
  // the remainder jobs as scalar-fallback singles at the tail.
  const bool laneMode = opts_.kind == sim::EngineKind::Lane;
  const unsigned laneWidth = laneMode ? clampLanes(opts_.engine.lanes) : 1;
  const size_t numGroups = laneMode ? jobs.size() / laneWidth : 0;
  const size_t numSingles = jobs.size() - numGroups * laneWidth;
  const size_t numUnits = laneMode ? numGroups + numSingles : jobs.size();
  if (laneMode) report.lane.lanes = laneWidth;

  unsigned workers = opts_.workers == 0 ? support::ThreadPool::defaultThreadCount()
                                        : opts_.workers;
  workers = std::max(1u, std::min<unsigned>(workers, static_cast<unsigned>(numUnits)));
  report.workers = workers;
  report.instances.resize(jobs.size());

  std::atomic<size_t> cursor{0};
  std::mutex mergeMu;  // guards report.warnings + report.lane (instances are index-disjoint)

  // Per-batch wall-time histogram (snapshotted into the report) plus the
  // process-wide aggregates that merge into --stats-json. The references
  // are resolved once, outside the claim loop; recording is lock-free.
  obs::LatencyHistogram batchHist;
  obs::LatencyHistogram& globalHist =
      obs::MetricsRegistry::global().histogram("farm.instance_wall_ns");
  obs::LatencyHistogram& claimHist =
      obs::MetricsRegistry::global().histogram("farm.claim_wait_ns");

  obs::MetricCounter& groupCounter =
      obs::MetricsRegistry::global().counter("farm.lane_groups");

  auto t0 = std::chrono::steady_clock::now();
  auto body = [&](unsigned) {
    for (;;) {
      size_t u = cursor.fetch_add(1, std::memory_order_relaxed);
      if (u >= numUnits) break;
      claimHist.record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
      std::vector<std::string> warnings;
      if (laneMode && u < numGroups) {
        // Lane block: laneWidth jobs on one SIMD group engine.
        const size_t base = u * laneWidth;
        obs::traceInstant("farm.claim", "group", u);
        obs::TraceSpan span("farm.lane_group", obs::TraceCat::None,
                            obs::TraceDetail::Phase, "group", u);
        groupCounter.add(1);
        runLaneGroup(base, laneWidth, jobs, report, warnings, mergeMu);
        for (unsigned l = 0; l < laneWidth; l++) {
          const FarmInstanceResult& r = report.instances[base + l];
          if (!r.error.empty()) continue;
          uint64_t wallNs = static_cast<uint64_t>(r.seconds * 1e9);
          batchHist.record(wallNs);
          globalHist.record(wallNs);
        }
      } else {
        // Single job: remainder of a lane batch (scalar CCSS fallback) or
        // the ordinary per-job path.
        const size_t i = laneMode ? numGroups * laneWidth + (u - numGroups) : u;
        obs::traceInstant("farm.claim", "instance", i);
        obs::TraceSpan span("farm.instance", obs::TraceCat::None,
                            obs::TraceDetail::Phase, "instance", i);
        const sim::EngineKind kind = laneMode ? sim::EngineKind::Ccss : opts_.kind;
        if (laneMode) {
          obs::MetricsRegistry::global().counter("farm.lane_scalar_fallbacks").add(1);
          std::lock_guard<std::mutex> lock(mergeMu);
          report.lane.scalarFallbacks++;
        }
        // ThreadPool tasks must not throw; trap per-instance failures into
        // the result so one bad job cannot take down the batch.
        try {
          report.instances[i] = runOne(i, jobs[i], kind, warnings);
          uint64_t wallNs =
              static_cast<uint64_t>(report.instances[i].seconds * 1e9);
          batchHist.record(wallNs);
          globalHist.record(wallNs);
        } catch (const support::ResourceExhausted& e) {
          // Keep the E05xx code visible in the per-instance error so callers
          // (essentc --batch, the daemon) can map it to their own taxonomy.
          report.instances[i].index = i;
          report.instances[i].name =
              jobs[i].name.empty() ? "job" + std::to_string(i) : jobs[i].name;
          report.instances[i].error = e.code() + ": " + e.what();
        } catch (const std::exception& e) {
          report.instances[i].index = i;
          report.instances[i].name =
              jobs[i].name.empty() ? "job" + std::to_string(i) : jobs[i].name;
          report.instances[i].error = e.what();
        }
      }
      if (!warnings.empty()) {
        std::lock_guard<std::mutex> lock(mergeMu);
        for (std::string& w : warnings)
          if (std::find(report.warnings.begin(), report.warnings.end(), w) ==
              report.warnings.end())
            report.warnings.push_back(std::move(w));
      }
    }
  };

  if (workers == 1) {
    // No pool: keeps single-worker farms usable from pool tasks. The farm
    // records the Busy span a pool worker would have, unless a pool.work
    // span above us already owns this interval.
    obs::TraceSession* s = obs::TraceSession::current();
    if (s && s->wants(obs::TraceDetail::Wave)) {
      bool nested = obs::trace_detail::inPooledWork();
      uint64_t w0 = s->nowNs();
      if (!nested) obs::trace_detail::setInPooledWork(true);
      body(0);
      if (!nested) obs::trace_detail::setInPooledWork(false);
      s->complete("farm.work", w0,
                  nested ? obs::TraceCat::None : obs::TraceCat::Busy);
    } else {
      body(0);
    }
  } else {
    support::ThreadPool pool(workers);
    report.workers = pool.numThreads();
    pool.run(body);
  }
  report.wallSeconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  report.instanceLatency = batchHist.snapshot();

  for (const FarmInstanceResult& r : report.instances) report.totalCycles += r.cycles;
  if (report.wallSeconds > 0) {
    report.instancesPerSec = static_cast<double>(jobs.size()) / report.wallSeconds;
    report.aggregateCyclesPerSec =
        static_cast<double>(report.totalCycles) / report.wallSeconds;
  }
  return report;
}

}  // namespace essent::core
