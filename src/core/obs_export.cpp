#include "core/obs_export.h"

#include <algorithm>

#include "obs/stats.h"

namespace essent::core {

obs::Json designSummaryJson(const sim::SimIR& ir) {
  obs::Json j = obs::Json::object();
  j["name"] = ir.name;
  j["ops"] = ir.ops.size();
  j["registers"] = ir.regs.size();
  j["memories"] = ir.mems.size();
  j["inputs"] = ir.inputs.size();
  j["outputs"] = ir.outputs.size();
  j["signals"] = ir.signals.size();
  return j;
}

obs::Json partitionStatsJson(const PartitionStats& stats) {
  obs::Json j = obs::Json::object();
  j["initial_parts"] = stats.initialParts;
  j["after_single_parent"] = stats.afterSingleParent;
  j["after_small_siblings"] = stats.afterSmallSiblings;
  j["final_parts"] = stats.finalParts;
  j["merges_a"] = stats.mergesA;
  j["merges_b"] = stats.mergesB;
  j["merges_c"] = stats.mergesC;
  j["rejected_merges"] = stats.rejectedMerges;
  j["small_remaining"] = stats.smallRemaining;
  j["cut_edges"] = static_cast<uint64_t>(stats.cutEdges < 0 ? 0 : stats.cutEdges);
  return j;
}

obs::Json scheduleSummaryJson(const CondPartSchedule& sched) {
  obs::Json j = obs::Json::object();
  j["partitions"] = sched.parts.size();
  j["elided_regs"] = sched.elidedRegs;
  j["elided_mem_writes"] = sched.elidedMemWrites;
  j["deferred_regs"] = sched.deferredRegs.size();
  j["deferred_mem_writes"] = sched.deferredMemWrites.size();
  j["part_outputs"] = sched.totalOutputs;
  obs::Histogram sizes;
  for (const auto& part : sched.parts) sizes.record(part.ops.size());
  j["partition_size"] = sizes.toJson();
  // Levelization shape: how much same-cycle parallelism the schedule
  // exposes. critical_path is the number of level-synchronous waves;
  // wave_width the histogram of partitions per wave.
  j["levels"] = sched.numLevels();
  j["critical_path"] = sched.numLevels();
  j["max_wave_width"] = sched.maxWaveWidth();
  obs::Histogram widths;
  for (const auto& wave : sched.waves) widths.record(wave.size());
  j["wave_width"] = widths.toJson();
  return j;
}

obs::Json placementReportJson(const BspPlacement& placement) {
  obs::Json j = obs::Json::object();
  j["threads"] = placement.threads;
  j["partitions"] = placement.threadOf.size();
  j["super_steps"] = placement.numSteps();
  j["levels"] = placement.levels;
  j["total_edges"] = placement.totalEdges;
  j["cross_edges"] = placement.crossEdges;
  j["cut_frac"] = placement.totalEdges > 0
                      ? static_cast<double>(placement.crossEdges) /
                            static_cast<double>(placement.totalEdges)
                      : 0.0;
  j["load_imbalance"] = placement.loadImbalance;
  obs::Json costs = obs::Json::array();
  for (uint64_t c : placement.threadCost) costs.push(c);
  j["thread_cost"] = std::move(costs);
  return j;
}

obs::Json engineStatsJson(const sim::EngineStats& stats) {
  obs::Json j = obs::Json::object();
  j["cycles"] = stats.cycles;
  j["ops_evaluated"] = stats.opsEvaluated;
  j["partition_checks"] = stats.partitionChecks;
  j["partition_activations"] = stats.partitionActivations;
  j["output_comparisons"] = stats.outputComparisons;
  j["trigger_sets"] = stats.triggerSets;
  j["signals_changed_total"] = stats.signalsChangedTotal;
  return j;
}

obs::Json activityProfileJson(const ActivityEngine& engine) {
  const ActivityProfile& prof = engine.profile();
  const CondPartSchedule& sched = engine.schedule();

  obs::Json j = obs::Json::object();
  j["design"] = engine.ir().name;
  j["engine"] = engine.name();
  j["threads"] = engine.threadCount();
  j["total_ops"] = engine.ir().ops.size();
  j["effective_activity"] = engine.effectiveActivity();
  j["stats"] = engineStatsJson(engine.stats());

  obs::Json parts = obs::Json::array();
  for (size_t i = 0; i < prof.parts.size(); i++) {
    const PartitionProfile& pp = prof.parts[i];
    obs::Json row = obs::Json::object();
    row["id"] = i;
    row["ops"] = sched.parts[i].ops.size();
    row["outputs"] = sched.parts[i].outputs.size();
    row["activations"] = pp.activations;
    row["ops_evaluated"] = pp.opsEvaluated;
    row["wakes_issued"] = pp.wakesIssued;
    parts.push(std::move(row));
  }
  j["partitions"] = std::move(parts);

  obs::Json timeline = obs::Json::object();
  timeline["window_cycles"] = prof.windowCycles;
  timeline["profiled_cycles"] = prof.profiledCycles;
  obs::Json windows = obs::Json::array();
  for (uint64_t v : prof.activationsPerWindow) windows.push(v);
  timeline["activations_per_window"] = std::move(windows);
  j["timeline"] = std::move(timeline);
  return j;
}

obs::Json farmReportJson(const FarmReport& report) {
  obs::Json j = obs::Json::object();
  j["engine"] = sim::engineKindName(report.kind);
  j["workers"] = report.workers;
  j["instances"] = report.instances.size();
  j["wall_seconds"] = report.wallSeconds;
  j["total_cycles"] = report.totalCycles;
  j["instances_per_sec"] = report.instancesPerSec;
  j["aggregate_cycles_per_sec"] = report.aggregateCyclesPerSec;
  if (report.instanceLatency.count > 0)
    j["instance_latency"] = report.instanceLatency.toJson();
  if (report.lane.lanes > 0) {
    obs::Json lane = obs::Json::object();
    lane["lanes"] = report.lane.lanes;
    lane["simd_backend"] = report.lane.simdBackend;
    lane["groups"] = report.lane.groups;
    lane["scalar_fallbacks"] = report.lane.scalarFallbacks;
    lane["group_partition_runs"] = report.lane.groupPartitionRuns;
    lane["group_partition_skips"] = report.lane.groupPartitionSkips;
    lane["masked_lane_skips"] = report.lane.maskedLaneSkips;
    j["lane"] = std::move(lane);
  }
  if (!report.warnings.empty()) {
    obs::Json warns = obs::Json::array();
    for (const std::string& w : report.warnings) warns.push(w);
    j["warnings"] = std::move(warns);
  }
  obs::Json rows = obs::Json::array();
  for (const FarmInstanceResult& r : report.instances) {
    obs::Json row = obs::Json::object();
    row["index"] = r.index;
    row["name"] = r.name;
    if (!r.error.empty()) {
      row["error"] = r.error;
      rows.push(std::move(row));
      continue;
    }
    row["cycles"] = r.cycles;
    row["stopped"] = r.stopped;
    row["exit_code"] = r.exitCode;
    row["seconds"] = r.seconds;
    row["effective_activity"] = r.effectiveActivity;
    row["stats"] = engineStatsJson(r.stats);
    rows.push(std::move(row));
  }
  j["instance_results"] = std::move(rows);
  return j;
}

std::vector<size_t> topHotPartitions(const ActivityProfile& prof, size_t n) {
  std::vector<size_t> order(prof.parts.size());
  for (size_t i = 0; i < order.size(); i++) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const PartitionProfile& pa = prof.parts[a];
    const PartitionProfile& pb = prof.parts[b];
    if (pa.opsEvaluated != pb.opsEvaluated) return pa.opsEvaluated > pb.opsEvaluated;
    if (pa.activations != pb.activations) return pa.activations > pb.activations;
    return a < b;
  });
  if (order.size() > n) order.resize(n);
  return order;
}

}  // namespace essent::core
