// SIMD dispatch for the lane engine's wide kernels.
//
// A "wide" op is a fast (single-word) ExecOp evaluated for n lanes at once
// over contiguous structure-of-arrays operand slots. Three tiers:
//
//   Portable — explicit per-lane loops with the switch hoisted out (GCC/
//              Clang auto-vectorize the bitwise/arith cases at -O3);
//   Avx2     — hand intrinsics for the unsigned bitwise/add/sub/mux/eq
//              subset (AVX2 has no 64-bit arithmetic right shift, so the
//              signed ops stay on the portable loops);
//   Avx512   — the same subset over 512-bit vectors + mask registers.
//
// The intrinsic TUs are compiled only when the compiler accepts
// -mavx2/-mavx512f (ESSENT_HAVE_AVX2/ESSENT_HAVE_AVX512 CMake defines) and
// are entered only when __builtin_cpu_supports agrees at runtime. The
// ESSENT_SIMD environment variable overrides detection: "off"/"portable"
// forces the portable loops, "avx2"/"avx512" caps the tier (clamped to what
// the build and CPU actually have). An intrinsic kernel returns false for
// any op outside its subset and the caller falls through to the portable
// loop, so every tier is semantically identical — the lane conformance
// tests run the same program under forced tiers and demand bit-equality.
#pragma once

#include <cstdint>

#include "sim/sim_ir.h"

namespace essent::core {

enum class LaneSimdTier : uint8_t { Portable = 0, Avx2 = 1, Avx512 = 2 };

// Wide-op kernel: evaluate `op` for n lanes (d/a/b/c are n-word SoA slots;
// c is read only for Mux). Returns false when the op is outside the
// kernel's subset — the caller must then run the portable loop.
using LaneWideFn = bool (*)(const sim::ExecOp& op, uint64_t* d, const uint64_t* a,
                            const uint64_t* b, const uint64_t* c, uint32_t n);

// Resolved tier after build gates, CPU detection, and the ESSENT_SIMD
// override (re-read on every call so tests can force tiers between engine
// constructions; engines capture the kernel once at construction).
LaneSimdTier laneSimdTier();
const char* laneSimdTierName(LaneSimdTier tier);  // "portable"/"avx2"/"avx512"
const char* laneSimdBackendName();                // name of the resolved tier

// Intrinsic kernel for the resolved tier, or nullptr on Portable.
LaneWideFn laneWideKernel();

// Portable reference loops. Handles every fast op except Const/MemRead
// (evaluated by the lane engine itself) — including Div/Rem, which the
// intrinsic tiers never cover. Stores canonically masked values.
void laneEvalWidePortable(const sim::ExecOp& op, uint64_t* d, const uint64_t* a,
                          const uint64_t* b, const uint64_t* c, uint32_t n);

// Test hook: pin the tier (same clamping as ESSENT_SIMD — forcing an
// unavailable tier resolves to the best available one below it).
// laneSimdResetTier() returns to environment + CPU detection.
void laneSimdForceTier(LaneSimdTier tier);
void laneSimdResetTier();

}  // namespace essent::core
