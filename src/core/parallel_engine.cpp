#include "core/parallel_engine.h"

#include <system_error>
#include <thread>

#include "obs/trace.h"
#include "sim/op_eval.h"

namespace essent::core {

using sim::MemInfo;
using sim::RegInfo;

ParallelActivityEngine::ParallelActivityEngine(std::shared_ptr<const CompiledCcss> ccss,
                                               unsigned threads)
    : ActivityEngine(std::move(ccss)),
      pool_(threads == 0 ? support::ThreadPool::defaultThreadCount() : threads),
      lane_(pool_.numThreads()),
      sweepFn_([this](unsigned lane) { sweepWave(lane); }),
      // Below ~4 partitions per lane the fork/join handoff dominates the
      // flag checks it distributes.
      minForkWidth_(static_cast<size_t>(pool_.numThreads()) * 4) {}

ParallelActivityEngine::ParallelActivityEngine(const sim::SimIR& ir, CondPartSchedule schedule,
                                               unsigned threads)
    : ParallelActivityEngine(
          CompiledCcss::compile(sim::CompiledDesign::compile(ir), std::move(schedule)),
          threads) {}

ParallelActivityEngine::ParallelActivityEngine(const sim::SimIR& ir, const ScheduleOptions& opts,
                                               unsigned threads)
    : ParallelActivityEngine(
          CompiledCcss::compile(sim::CompiledDesign::compile(ir), opts), threads) {}

void ParallelActivityEngine::wakeOnLane(const std::vector<int32_t>& parts, LaneCounters& lc) {
  // Idempotent set-to-1: concurrent setters of the same flag race only with
  // each other, and all write the same value with no read-modify-write.
  for (int32_t p : parts)
    std::atomic_ref<uint8_t>(active_[static_cast<size_t>(p)]).store(1, std::memory_order_relaxed);
  lc.triggerSets += parts.size();
}

void ParallelActivityEngine::applyRegWriteOnLane(const SchedRegWrite& rw, LaneCounters& lc) {
  const RegInfo& r = ir_->regs[static_cast<size_t>(rw.regIdx)];
  lc.outputComparisons++;
  if (sigValsEqual(r.sig, r.next)) return;
  copySigWords(r.sig, r.next);
  wakeOnLane(rw.wakeParts, lc);
}

void ParallelActivityEngine::applyMemWriteOnLane(const SchedMemWrite& mw, LaneCounters& lc) {
  const MemInfo& mem = ir_->mems[static_cast<size_t>(mw.memIdx)];
  const sim::MemWriter& w = mem.writers[static_cast<size_t>(mw.writerIdx)];
  if (state_.vals[layout_.offset[w.en]] == 0) return;
  if (state_.vals[layout_.offset[w.mask]] == 0) return;
  uint64_t addr = state_.vals[layout_.offset[w.addr]];
  if (addr >= mem.depth) return;
  uint32_t rw = state_.memRowWords[static_cast<size_t>(mw.memIdx)];
  uint32_t off = layout_.offset[w.data];
  auto& words = state_.memWords[static_cast<size_t>(mw.memIdx)];
  bool changed = false;
  lc.outputComparisons++;
  for (uint32_t i = 0; i < rw; i++) {
    if (words[addr * rw + i] != state_.vals[off + i]) {
      words[addr * rw + i] = state_.vals[off + i];
      changed = true;
    }
  }
  if (changed) wakeOnLane(mw.wakeParts, lc);
}

void ParallelActivityEngine::runPartitionOnLane(size_t pos, LaneCounters& lc) {
  obs::TraceSpan span("part", obs::TraceCat::None, obs::TraceDetail::Partition,
                      "part", pos);
  const CondPart& part = sched_.parts[pos];
  lc.activations++;
  const uint64_t wakesBefore = lc.triggerSets;

  size_t outBase = partOutBase_[pos];
  for (size_t oi = 0; oi < part.outputs.size(); oi++) {
    const PartOutput& o = part.outputs[oi];
    uint32_t so = outputSaveOff_[outBase + oi];
    uint32_t vo = layout_.offset[o.sig];
    for (uint32_t i = 0; i < layout_.nwords[o.sig]; i++)
      outputSave_[so + i] = state_.vals[vo + i];
  }

  if (!ir_->hasCombLoops()) {
    for (int32_t opIdx : part.ops)
      sim::evalExecOp(*ir_, layout_, state_, exec_[static_cast<size_t>(opIdx)]);
  } else {
    for (size_t k = 0; k < part.ops.size();) {
      int32_t opIdx = part.ops[k];
      int32_t super = ir_->superOf(static_cast<size_t>(opIdx));
      if (super < 0) {
        sim::evalExecOp(*ir_, layout_, state_, exec_[static_cast<size_t>(opIdx)]);
        k++;
        continue;
      }
      size_t j = k;
      while (j < part.ops.size() && ir_->superOf(static_cast<size_t>(part.ops[j])) == super)
        j++;
      sim::evalSuperRange(*ir_, layout_, state_, exec_.data() + opIdx, j - k);
      k = j;
    }
  }
  lc.opsEvaluated += part.ops.size();

  for (const auto& rw : part.regWrites) applyRegWriteOnLane(rw, lc);
  for (const auto& mw : part.memWrites) applyMemWriteOnLane(mw, lc);

  for (size_t oi = 0; oi < part.outputs.size(); oi++) {
    const PartOutput& o = part.outputs[oi];
    uint32_t so = outputSaveOff_[outBase + oi];
    uint32_t vo = layout_.offset[o.sig];
    uint64_t diff = 0;
    for (uint32_t i = 0; i < layout_.nwords[o.sig]; i++)
      diff |= outputSave_[so + i] ^ state_.vals[vo + i];
    lc.outputComparisons++;
    if (diff != 0) wakeOnLane(o.consumers, lc);
  }

  if (profiling_) {
    // prof_.parts[pos] is touched only by the lane that claimed pos.
    PartitionProfile& pp = prof_.parts[pos];
    pp.activations++;
    pp.opsEvaluated += part.ops.size();
    pp.wakesIssued += lc.triggerSets - wakesBefore;
  }
}

void ParallelActivityEngine::sweepWave(unsigned lane) {
  // Per-lane wave span: TraceCat::None because the enclosing pool.work span
  // already owns this interval's Busy attribution. The level arg feeds the
  // per-level imbalance report.
  obs::TraceSpan span("wave", obs::TraceCat::None, obs::TraceDetail::Wave,
                      "level", waveLevel_);
  LaneCounters& lc = lane_[lane];
  const std::vector<int32_t>& wave = *wave_;
  for (;;) {
    size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= wave.size()) return;
    size_t pos = static_cast<size_t>(wave[i]);
    std::atomic_ref<uint8_t> flag(active_[pos]);
    if (flag.load(std::memory_order_relaxed) == 0) continue;
    flag.store(0, std::memory_order_relaxed);  // deactivate-first, as serial
    runPartitionOnLane(pos, lc);
  }
}

void ParallelActivityEngine::mergeLaneCounters() {
  for (LaneCounters& lc : lane_) {
    stats_.opsEvaluated += lc.opsEvaluated;
    stats_.partitionActivations += lc.activations;
    stats_.outputComparisons += lc.outputComparisons;
    stats_.triggerSets += lc.triggerSets;
    lc = LaneCounters{};
  }
}

void ParallelActivityEngine::tick() {
  // The session pointer is resolved once per tick; when no trace is
  // recording every added branch below is off a nullptr/false check.
  obs::TraceSession* ts = obs::TraceSession::current();
  if (ts && !ts->wants(obs::TraceDetail::Wave)) ts = nullptr;
  // Sequential phases are Busy on this thread unless a pool.work span above
  // us (e.g. a SimFarm worker running this engine) already claims them.
  const obs::TraceCat seqCat = obs::trace_detail::inPooledWork()
                                   ? obs::TraceCat::None
                                   : obs::TraceCat::Busy;

  {
    obs::TraceSpan pre("tick.pre", seqCat, obs::TraceDetail::Wave);
    sweepInputs();
  }

  // 2. Partition sweep, one fork/join per levelization wave. Narrow waves
  //    (including every wave when the pool has one lane) run inline.
  stats_.partitionChecks += sched_.parts.size();
  const uint64_t activationsBefore = stats_.partitionActivations;
  uint64_t activeAccum = 0, skippedAccum = 0;
  size_t level = 0;
  for (const auto& wave : sched_.waves) {
    uint64_t waveActivations = 0;
    if (ts) {
      for (const LaneCounters& lc : lane_) waveActivations -= lc.activations;
    }
    if (wave.size() < minForkWidth_ || pool_.numThreads() == 1) {
      obs::TraceSpan span("wave", seqCat, obs::TraceDetail::Wave, "level", level);
      LaneCounters& lc = lane_[0];
      for (int32_t p : wave) {
        size_t pos = static_cast<size_t>(p);
        if (!active_[pos]) continue;
        active_[pos] = 0;
        runPartitionOnLane(pos, lc);
      }
    } else {
      wave_ = &wave;
      waveLevel_ = level;
      cursor_.store(0, std::memory_order_relaxed);
      pool_.run(sweepFn_);
    }
    if (ts) {
      // Counter tracks: partitions evaluated vs skipped, cumulative across
      // the run so the Perfetto track shows activity-factor slope.
      for (const LaneCounters& lc : lane_) waveActivations += lc.activations;
      activeAccum += waveActivations;
      skippedAccum += wave.size() - waveActivations;
      ts->counter("parts_active", stats_.partitionActivations + activeAccum);
      ts->counter("parts_skipped", partsSkippedBase_ + skippedAccum);
    }
    level++;
  }
  partsSkippedBase_ += skippedAccum;

  {
    obs::TraceSpan post("tick.post", seqCat, obs::TraceDetail::Wave);
    mergeLaneCounters();
    if (profiling_) recordProfiledCycle(stats_.partitionActivations - activationsBefore);

    finishCycle();
  }
}

std::unique_ptr<ActivityEngine> makeCcssEngine(
    std::shared_ptr<const sim::CompiledDesign> design, const ScheduleOptions& opts,
    unsigned threads, std::vector<std::string>* warnings) {
  auto warn = [&](const std::string& msg) {
    if (warnings) warnings->push_back(msg);
  };
  std::shared_ptr<const CompiledCcss> ccss = CompiledCcss::get(design, opts);
  unsigned requested = threads == 0 ? support::ThreadPool::defaultThreadCount() : threads;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0 && requested > hw) {
    warn("requested " + std::to_string(requested) + " threads exceeds hardware concurrency (" +
         std::to_string(hw) + "); clamping");
    requested = hw;
  }
  if (requested <= 1) return std::make_unique<ActivityEngine>(std::move(ccss));
  try {
    auto eng = std::make_unique<ParallelActivityEngine>(ccss, requested);
    unsigned got = eng->threadCount();
    if (got == 1) {
      warn("no worker threads could be created; falling back to serial CCSS engine");
      return std::make_unique<ActivityEngine>(std::move(ccss));
    }
    if (got < requested)
      warn("only " + std::to_string(got) + " of " + std::to_string(requested) +
           " threads could be created; running degraded");
    return eng;
  } catch (const std::system_error& e) {
    warn(std::string("parallel engine unavailable (") + e.what() +
         "); falling back to serial CCSS engine");
    return std::make_unique<ActivityEngine>(std::move(ccss));
  }
}

std::unique_ptr<ActivityEngine> makeCcssEngine(const sim::SimIR& ir,
                                               const ScheduleOptions& opts,
                                               unsigned threads,
                                               std::vector<std::string>* warnings) {
  return makeCcssEngine(sim::CompiledDesign::compile(ir), opts, threads, warnings);
}

}  // namespace essent::core
