#include "core/parallel_engine.h"

#include <algorithm>
#include <system_error>
#include <thread>

#include "obs/trace.h"
#include "sim/op_eval.h"

namespace essent::core {

using sim::MemInfo;
using sim::RegInfo;

namespace {

// Pool width: the requested count clamped to the placement's useful width —
// a lane with no partitions would only add barrier arrivals.
unsigned usefulWidth(const CondPartSchedule& sched, unsigned threads) {
  unsigned req = threads == 0 ? support::ThreadPool::defaultThreadCount() : threads;
  size_t parts = sched.numPartitions();
  if (parts == 0) return 1;
  if (static_cast<size_t>(req) > parts) req = static_cast<unsigned>(parts);
  return std::max(1u, req);
}

}  // namespace

ParallelActivityEngine::ParallelActivityEngine(std::shared_ptr<const CompiledCcss> ccss,
                                               unsigned threads)
    : ActivityEngine(std::move(ccss)),
      pool_(usefulWidth(sched_, threads)),
      lane_(pool_.numThreads()),
      stepFn_([this](unsigned lane, size_t step) { runStep(lane, step); }),
      // First cycle activates everything, so start on the pooled path.
      lastActivations_(sched_.parts.size()),
      // Below ~4 active partitions per lane the fork handoff dominates the
      // work it distributes — those cycles run inline (the low-activity
      // regime the whole engine exists to win).
      serialCutoff_(static_cast<uint64_t>(pool_.numThreads()) * 4) {
  // Built here rather than in the initializer list so a degraded pool
  // (worker spawn failure) places onto the lanes that actually exist.
  PlacementOptions popts;
  popts.threads = pool_.numThreads();
  placement_ = buildPlacement(sched_, popts);
  const size_t T = placement_.threads;
  mailbox_[0].assign(T * T, {});
  mailbox_[1].assign(T * T, {});
}

void ParallelActivityEngine::wakeOnLane(const std::vector<int32_t>& parts, unsigned lane,
                                        std::vector<int32_t>* outbox, LaneCounters& lc) {
  // Plain stores only: a flag is written by its owning lane (drain, clear,
  // same-thread wake) or by the calling thread outside the fork. Wakes to
  // another lane's partition travel through that lane's mailbox instead of
  // touching the flag.
  for (int32_t p : parts) {
    const size_t pos = static_cast<size_t>(p);
    const unsigned owner = static_cast<unsigned>(placement_.threadOf[pos]);
    if (outbox == nullptr || owner == lane)
      active_[pos] = 1;
    else
      outbox[owner].push_back(p);
  }
  lc.triggerSets += parts.size();
}

void ParallelActivityEngine::applyRegWriteOnLane(const SchedRegWrite& rw, unsigned lane,
                                                 std::vector<int32_t>* outbox,
                                                 LaneCounters& lc) {
  const RegInfo& r = ir_->regs[static_cast<size_t>(rw.regIdx)];
  lc.outputComparisons++;
  if (sigValsEqual(r.sig, r.next)) return;
  copySigWords(r.sig, r.next);
  wakeOnLane(rw.wakeParts, lane, outbox, lc);
}

void ParallelActivityEngine::applyMemWriteOnLane(const SchedMemWrite& mw, unsigned lane,
                                                 std::vector<int32_t>* outbox,
                                                 LaneCounters& lc) {
  const MemInfo& mem = ir_->mems[static_cast<size_t>(mw.memIdx)];
  const sim::MemWriter& w = mem.writers[static_cast<size_t>(mw.writerIdx)];
  if (state_.vals[layout_.offset[w.en]] == 0) return;
  if (state_.vals[layout_.offset[w.mask]] == 0) return;
  uint64_t addr = state_.vals[layout_.offset[w.addr]];
  if (addr >= mem.depth) return;
  uint32_t rw = state_.memRowWords[static_cast<size_t>(mw.memIdx)];
  uint32_t off = layout_.offset[w.data];
  auto& words = state_.memWords[static_cast<size_t>(mw.memIdx)];
  bool changed = false;
  lc.outputComparisons++;
  for (uint32_t i = 0; i < rw; i++) {
    if (words[addr * rw + i] != state_.vals[off + i]) {
      words[addr * rw + i] = state_.vals[off + i];
      changed = true;
    }
  }
  if (changed) wakeOnLane(mw.wakeParts, lane, outbox, lc);
}

void ParallelActivityEngine::runPartitionOnLane(size_t pos, unsigned lane,
                                                std::vector<int32_t>* outbox,
                                                LaneCounters& lc) {
  obs::TraceSpan span("part", obs::TraceCat::None, obs::TraceDetail::Partition,
                      "part", pos);
  const CondPart& part = sched_.parts[pos];
  lc.activations++;
  const uint64_t wakesBefore = lc.triggerSets;

  size_t outBase = partOutBase_[pos];
  for (size_t oi = 0; oi < part.outputs.size(); oi++) {
    const PartOutput& o = part.outputs[oi];
    uint32_t so = outputSaveOff_[outBase + oi];
    uint32_t vo = layout_.offset[o.sig];
    for (uint32_t i = 0; i < layout_.nwords[o.sig]; i++)
      outputSave_[so + i] = state_.vals[vo + i];
  }

  if (!ir_->hasCombLoops()) {
    for (int32_t opIdx : part.ops)
      sim::evalExecOp(*ir_, layout_, state_, exec_[static_cast<size_t>(opIdx)]);
  } else {
    for (size_t k = 0; k < part.ops.size();) {
      int32_t opIdx = part.ops[k];
      int32_t super = ir_->superOf(static_cast<size_t>(opIdx));
      if (super < 0) {
        sim::evalExecOp(*ir_, layout_, state_, exec_[static_cast<size_t>(opIdx)]);
        k++;
        continue;
      }
      size_t j = k;
      while (j < part.ops.size() && ir_->superOf(static_cast<size_t>(part.ops[j])) == super)
        j++;
      sim::evalSuperRange(*ir_, layout_, state_, exec_.data() + opIdx, j - k);
      k = j;
    }
  }
  lc.opsEvaluated += part.ops.size();

  for (const auto& rw : part.regWrites) applyRegWriteOnLane(rw, lane, outbox, lc);
  for (const auto& mw : part.memWrites) applyMemWriteOnLane(mw, lane, outbox, lc);

  for (size_t oi = 0; oi < part.outputs.size(); oi++) {
    const PartOutput& o = part.outputs[oi];
    uint32_t so = outputSaveOff_[outBase + oi];
    uint32_t vo = layout_.offset[o.sig];
    uint64_t diff = 0;
    for (uint32_t i = 0; i < layout_.nwords[o.sig]; i++)
      diff |= outputSave_[so + i] ^ state_.vals[vo + i];
    lc.outputComparisons++;
    if (diff != 0) wakeOnLane(o.consumers, lane, outbox, lc);
  }

  if (profiling_) {
    // prof_.parts[pos] is touched only by the lane that owns pos.
    PartitionProfile& pp = prof_.parts[pos];
    pp.activations++;
    pp.opsEvaluated += part.ops.size();
    pp.wakesIssued += lc.triggerSets - wakesBefore;
  }
}

void ParallelActivityEngine::runStep(unsigned lane, size_t step) {
  const size_t T = placement_.threads;
  const size_t parity = step & 1;
  LaneCounters& lc = lane_[lane];

  // Drain phase: wakes posted to this lane during the previous super-step
  // (the inter-step barrier separates the writers' pushes from this read).
  std::vector<int32_t>* inbox = mailbox_[parity].data();
  for (size_t src = 0; src < T; src++) {
    std::vector<int32_t>& box = inbox[src * T + lane];
    if (box.empty()) continue;
    for (int32_t p : box) active_[static_cast<size_t>(p)] = 1;
    box.clear();
  }

  // Run phase: this lane's positions for this step, ascending schedule
  // order (a topological order of the same-thread dependency edges).
  std::vector<int32_t>* outbox = mailbox_[parity ^ 1].data() + lane * T;
  for (int32_t p : placement_.steps[step].runs[lane]) {
    const size_t pos = static_cast<size_t>(p);
    if (!active_[pos]) continue;
    active_[pos] = 0;  // deactivate-first, as serial
    runPartitionOnLane(pos, lane, outbox, lc);
  }
}

void ParallelActivityEngine::serialSweep() {
  // Identical to the serial engine's partition sweep; outbox == nullptr
  // routes every wake straight to the flag.
  LaneCounters& lc = lane_[0];
  const size_t n = sched_.parts.size();
  for (size_t pos = 0; pos < n; pos++) {
    if (!active_[pos]) continue;
    active_[pos] = 0;
    runPartitionOnLane(pos, 0, nullptr, lc);
  }
}

void ParallelActivityEngine::drainFinalMailboxes() {
  // Wakes posted during the final super-step target positions whose step
  // already passed; setting their flags now (caller-owned time, published
  // by the join) makes them effective next cycle, as in the serial engine.
  // Only the final step's write parity can be nonempty; clearing both keeps
  // the empty-between-cycles invariant local.
  for (auto& boxes : mailbox_) {
    for (auto& box : boxes) {
      for (int32_t p : box) active_[static_cast<size_t>(p)] = 1;
      box.clear();
    }
  }
}

void ParallelActivityEngine::mergeLaneCounters() {
  for (LaneCounters& lc : lane_) {
    stats_.opsEvaluated += lc.opsEvaluated;
    stats_.partitionActivations += lc.activations;
    stats_.outputComparisons += lc.outputComparisons;
    stats_.triggerSets += lc.triggerSets;
    lc = LaneCounters{};
  }
}

void ParallelActivityEngine::tick() {
  // The session pointer is resolved once per tick; when no trace is
  // recording every added branch below is off a nullptr/false check.
  obs::TraceSession* ts = obs::TraceSession::current();
  if (ts && !ts->wants(obs::TraceDetail::Wave)) ts = nullptr;
  // Sequential phases are Busy on this thread unless a pool.work span above
  // us (e.g. a SimFarm worker running this engine) already claims them.
  const obs::TraceCat seqCat = obs::trace_detail::inPooledWork()
                                   ? obs::TraceCat::None
                                   : obs::TraceCat::Busy;

  {
    obs::TraceSpan pre("tick.pre", seqCat, obs::TraceDetail::Wave);
    sweepInputs();
  }

  // 2. Partition sweep: one fork for ALL super-steps — or no fork at all
  //    when the previous cycle's activity predicts too little work to
  //    distribute.
  stats_.partitionChecks += sched_.parts.size();
  const uint64_t activationsBefore = stats_.partitionActivations;
  const size_t numSteps = placement_.numSteps();
  const bool inlineSweep = pool_.numThreads() == 1 || numSteps == 0 ||
                           (serialCutoff_ > 0 && lastActivations_ <= serialCutoff_);
  if (inlineSweep) {
    obs::TraceSpan span("sweep.serial", seqCat, obs::TraceDetail::Wave);
    serialSweep();
  } else {
    pool_.runSteps(numSteps, stepFn_);
    drainFinalMailboxes();
  }
  mergeLaneCounters();
  const uint64_t activations = stats_.partitionActivations - activationsBefore;
  lastActivations_ = activations;
  if (ts) {
    // Counter tracks: partitions evaluated vs skipped, cumulative across
    // the run so the Perfetto track shows activity-factor slope.
    partsSkippedBase_ += sched_.parts.size() - activations;
    ts->counter("parts_active", stats_.partitionActivations);
    ts->counter("parts_skipped", partsSkippedBase_);
  }

  {
    obs::TraceSpan post("tick.post", seqCat, obs::TraceDetail::Wave);
    if (profiling_) recordProfiledCycle(activations);
    finishCycle();
  }
}

std::unique_ptr<ActivityEngine> makeCcssEngine(std::shared_ptr<const CompiledCcss> ccss,
                                               unsigned threads,
                                               std::vector<std::string>* warnings) {
  auto warn = [&](const std::string& msg) {
    if (warnings) warnings->push_back(msg);
  };
  unsigned requested = threads == 0 ? support::ThreadPool::defaultThreadCount() : threads;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0 && requested > hw) {
    warn("requested " + std::to_string(requested) + " threads exceeds hardware concurrency (" +
         std::to_string(hw) + "); clamping");
    requested = hw;
  }
  const size_t parts = ccss->body->sched.numPartitions();
  if (parts > 0 && static_cast<size_t>(requested) > parts) {
    warn("requested " + std::to_string(requested) +
         " threads exceeds the placement's useful width (" + std::to_string(parts) +
         " partitions); clamping");
    requested = static_cast<unsigned>(parts);
  }
  if (requested <= 1) return std::make_unique<ActivityEngine>(std::move(ccss));
  try {
    auto eng = std::make_unique<ParallelActivityEngine>(ccss, requested);
    unsigned got = eng->threadCount();
    if (got == 1) {
      warn("no worker threads could be created; falling back to serial CCSS engine");
      return std::make_unique<ActivityEngine>(std::move(ccss));
    }
    if (got < requested)
      warn("only " + std::to_string(got) + " of " + std::to_string(requested) +
           " threads could be created; running degraded");
    return eng;
  } catch (const std::system_error& e) {
    warn(std::string("parallel engine unavailable (") + e.what() +
         "); falling back to serial CCSS engine");
    return std::make_unique<ActivityEngine>(std::move(ccss));
  }
}

std::unique_ptr<ActivityEngine> makeCcssEngine(
    std::shared_ptr<const sim::CompiledDesign> design, const ScheduleOptions& opts,
    unsigned threads, std::vector<std::string>* warnings) {
  return makeCcssEngine(CompiledCcss::get(design, opts), threads, warnings);
}

std::unique_ptr<ActivityEngine> makeCcssEngine(const sim::SimIR& ir,
                                               const ScheduleOptions& opts,
                                               unsigned threads,
                                               std::vector<std::string>* warnings) {
  return makeCcssEngine(sim::CompiledDesign::compile(ir), opts, threads, warnings);
}

}  // namespace essent::core
