// sim::makeEngine definition. Lives in the core library because the CCSS
// backends (ActivityEngine, ParallelActivityEngine) do; the declaration
// stays in sim/engine_factory.h as part of the stable engine interface.
#include <stdexcept>

#include "core/activity_engine.h"
#include "core/lane_engine.h"
#include "core/parallel_engine.h"
#include "sim/engine_factory.h"
#include "sim/event_driven.h"
#include "sim/full_cycle.h"

namespace essent::sim {

namespace {

core::ScheduleOptions scheduleOptionsFrom(const EngineOptions& opts) {
  core::ScheduleOptions so;
  so.partition.smallThreshold = opts.partitionSmallThreshold;
  so.stateElision = opts.stateElision;
  return so;
}

void applyProfiling(Engine& eng, const EngineOptions& opts) {
  if (!opts.profiling) return;
  if (auto* act = dynamic_cast<core::ActivityEngine*>(&eng)) {
    act->setProfileWindow(opts.profileWindow);
    act->setProfiling(true);
  }
}

}  // namespace

std::unique_ptr<Engine> makeEngine(EngineKind kind,
                                   std::shared_ptr<const CompiledDesign> design,
                                   const EngineOptions& opts) {
  std::unique_ptr<Engine> eng;
  switch (kind) {
    case EngineKind::FullCycle:
      eng = std::make_unique<FullCycleEngine>(std::move(design));
      break;
    case EngineKind::EventDriven:
      eng = std::make_unique<EventDrivenEngine>(std::move(design));
      break;
    case EngineKind::Ccss:
      eng = std::make_unique<core::ActivityEngine>(
          core::CompiledCcss::get(design, scheduleOptionsFrom(opts)));
      break;
    case EngineKind::CcssPar:
      // Graceful degradation (thread clamping, spawn-failure fallback to
      // the serial engine) with messages routed to opts.warnings.
      eng = core::makeCcssEngine(std::move(design), scheduleOptionsFrom(opts), opts.threads,
                                 opts.warnings);
      break;
    case EngineKind::Lane: {
      const unsigned lanes = opts.lanes < 1 ? 1 : (opts.lanes > 64 ? 64 : opts.lanes);
      eng = std::make_unique<core::LaneBroadcastEngine>(
          core::CompiledCcss::get(design, scheduleOptionsFrom(opts)), lanes);
      break;
    }
    case EngineKind::Codegen:
      throw std::invalid_argument(
          "engine kind 'codegen' is the out-of-process compiled simulator "
          "(codegen::emitCpp); it cannot be constructed by sim::makeEngine");
  }
  applyProfiling(*eng, opts);
  return eng;
}

std::unique_ptr<Engine> makeEngine(EngineKind kind, const SimIR& ir, const EngineOptions& opts) {
  return makeEngine(kind, CompiledDesign::compile(ir), opts);
}

}  // namespace essent::sim
