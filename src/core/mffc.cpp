#include "core/mffc.h"

#include <stdexcept>

namespace essent::core {

using graph::DiGraph;
using graph::NodeId;

namespace {

// Grows the fanout-free cone of `root` over nodes for which `eligible`
// returns true: a predecessor joins when all of its consumers are already
// members. `inCone` is a scratch marker the caller provides (values reset
// on exit).
template <typename Eligible>
std::vector<NodeId> growCone(const DiGraph& g, NodeId root, std::vector<bool>& inCone,
                             const Eligible& eligible) {
  std::vector<NodeId> members = {root};
  inCone[root] = true;
  // Classic worklist: whenever a node joins, its predecessors become
  // candidates; a candidate joins iff all its out-neighbors are members.
  std::vector<NodeId> frontier = {root};
  while (!frontier.empty()) {
    NodeId v = frontier.back();
    frontier.pop_back();
    for (NodeId p : g.inNeighbors(v)) {
      if (inCone[p] || !eligible(p)) continue;
      bool allInside = true;
      for (NodeId c : g.outNeighbors(p)) {
        if (!inCone[c]) {
          allInside = false;
          break;
        }
      }
      if (allInside) {
        inCone[p] = true;
        members.push_back(p);
        frontier.push_back(p);
      }
    }
  }
  for (NodeId m : members) inCone[m] = false;
  return members;
}

}  // namespace

std::vector<NodeId> mffcOf(const DiGraph& g, NodeId root) {
  std::vector<bool> scratch(static_cast<size_t>(g.numNodes()), false);
  return growCone(g, root, scratch, [](NodeId) { return true; });
}

std::vector<int32_t> mffcDecompose(const DiGraph& g, int32_t* numParts) {
  NodeId n = g.numNodes();
  std::vector<int32_t> partOf(static_cast<size_t>(n), -1);
  std::vector<bool> scratch(static_cast<size_t>(n), false);
  int32_t next = 0;

  auto order = g.topoSort();
  if (!order) throw std::logic_error("mffcDecompose requires an acyclic graph");

  // Process in reverse topological order so sinks seed cones first; every
  // still-unassigned node becomes the root of its own MFFC (restricted to
  // unassigned nodes, which preserves maximality: an assigned consumer means
  // the candidate has fanout escaping the cone).
  for (size_t idx = order->size(); idx-- > 0;) {
    NodeId v = (*order)[idx];
    if (partOf[static_cast<size_t>(v)] != -1) continue;
    auto members = growCone(g, v, scratch,
                            [&](NodeId u) { return partOf[static_cast<size_t>(u)] == -1; });
    for (NodeId m : members) partOf[static_cast<size_t>(m)] = next;
    next++;
  }
  if (numParts) *numParts = next;
  return partOf;
}

}  // namespace essent::core
