// AVX2 wide kernels — compiled with -mavx2 (flag-gated in CMake) and
// entered only after a __builtin_cpu_supports("avx2") check, so the rest of
// the binary stays baseline-ISA clean.
//
// Covers the unsigned bitwise/add/sub/mux/eq subset: AVX2 has no 64-bit
// arithmetic right shift or 64-bit compare-unsigned, so the signed and
// ordered-compare ops stay on the portable loops (returning false routes
// the caller there). Lane counts are always a multiple of 4 when lanes > 1
// (LaneStateLayout pads the stride to 8); a stride of 1 also returns false.
#include <immintrin.h>

#include "core/lane_simd.h"
#include "sim/op_eval.h"

namespace essent::core {

using sim::ExecOp;
using sim::OpCode;

bool laneWideAvx2(const ExecOp& op, uint64_t* d, const uint64_t* a, const uint64_t* b,
                  const uint64_t* c, uint32_t n) {
  if (n % 4 != 0) return false;
  if (op.signedOp && op.code != OpCode::Not) return false;
  const __m256i dm = _mm256_set1_epi64x(static_cast<long long>(sim::maskW(op.destW)));
  const __m256i ones = _mm256_set1_epi64x(1);
  const __m256i allset = _mm256_set1_epi64x(-1);

#define AVX2_LOOP(EXPR)                                                       \
  do {                                                                        \
    for (uint32_t i = 0; i < n; i += 4) {                                     \
      const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)); \
      const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)); \
      (void)vb;                                                               \
      const __m256i vr = (EXPR);                                              \
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i),                  \
                          _mm256_and_si256(vr, dm));                          \
    }                                                                         \
  } while (0)

  switch (op.code) {
    case OpCode::And:
      AVX2_LOOP(_mm256_and_si256(va, vb));
      return true;
    case OpCode::Or:
      AVX2_LOOP(_mm256_or_si256(va, vb));
      return true;
    case OpCode::Xor:
      AVX2_LOOP(_mm256_xor_si256(va, vb));
      return true;
    case OpCode::Not:
      AVX2_LOOP(_mm256_xor_si256(va, allset));
      return true;
    case OpCode::Add:
      AVX2_LOOP(_mm256_add_epi64(va, vb));
      return true;
    case OpCode::Sub:
      AVX2_LOOP(_mm256_sub_epi64(va, vb));
      return true;
    case OpCode::Eq:
      // cmpeq yields all-ones per equal lane; AND with 1 gives the 0/1
      // result the scalar path produces.
      AVX2_LOOP(_mm256_and_si256(_mm256_cmpeq_epi64(va, vb), ones));
      return true;
    case OpCode::Neq:
      AVX2_LOOP(_mm256_andnot_si256(_mm256_cmpeq_epi64(va, vb), ones));
      return true;
    case OpCode::Mux:
      // blendv picks the second source where the mask's byte high bits are
      // set; cmpeq(a,0) sets whole 64-bit lanes, so the byte granularity is
      // consistent. Mask set (sel == 0) -> false value.
      for (uint32_t i = 0; i < n; i += 4) {
        const __m256i sel = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i tv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
        const __m256i fv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i));
        const __m256i isZero = _mm256_cmpeq_epi64(sel, _mm256_setzero_si256());
        const __m256i vr = _mm256_blendv_epi8(tv, fv, isZero);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i), _mm256_and_si256(vr, dm));
      }
      return true;
    default:
      return false;
  }
#undef AVX2_LOOP
}

}  // namespace essent::core
