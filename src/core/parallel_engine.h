// Statically-placed bulk-synchronous parallel CCSS activity engine.
//
// The previous wave-parallel engine forked and joined the pool once per
// levelization level — 2 x levels barrier crossings per cycle (67-77 levels
// on the SoC designs), which erased the paper's activity savings at every
// thread count. This engine moves the scheduling decision to compile time:
// a BspPlacement (core/placement.h) pins every partition to one worker
// thread and coarsens the levels into a handful of super-steps, so a cycle
// costs ONE pool fork, (super-steps - 1) in-fork counting barriers, and one
// join — regardless of how many levels the schedule has.
//
// Execution model per cycle:
//   * input sweep (sequential, as serial);
//   * if the previous cycle activated fewer partitions than the serial
//     cutoff, the whole sweep runs inline on the calling thread in schedule
//     order — exactly the serial engine's loop, so low-activity cycles (the
//     paper's common case) never pay the fork;
//   * otherwise ThreadPool::runSteps runs the placement: in super-step s,
//     lane t first drains its wake mailboxes (cross-thread wakes posted in
//     step s-1, barrier-separated), then runs its positions in ascending
//     schedule order, testing-and-clearing wake flags;
//   * sequential finish (side effects + non-elided state), as serial.
//
// Race-freedom is by OWNERSHIP, not atomics: a partition's wake flag is
// written only by its owning lane inside the fork (drains set it, the run
// loop clears it, same-thread wakes store it) and only by the calling
// thread outside the fork (input/state wakes between cycles) — publication
// in both directions rides the pool's epoch handoff and join. Cross-thread
// wakes go through per-(src,dst) mailbox vectors double-buffered by
// super-step parity: src pushes during step s into the parity-(s+1) box,
// dst drains it at step s+1, and the inter-step barrier orders the two, so
// every access to every byte is data-race-free with PLAIN loads and stores
// (the tsan suite runs this engine as its oracle). Wakes posted in the
// final step are drained by the caller after the join; they target
// positions whose step already passed, so like the serial engine's state
// wakes they take effect next cycle.
//
// EngineStats stay serial-identical: counters accumulate into per-lane
// cache-line-padded slots merged after the sweep, triggerSets counts wake
// targets (not mailbox hops), and the placement's edge rules (cross-thread
// dependency edge => strictly earlier super-step; same-thread => earlier
// position) reproduce the serial activation set exactly.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/activity_engine.h"
#include "core/placement.h"
#include "support/threadpool.h"

namespace essent::core {

class ParallelActivityEngine : public ActivityEngine {
 public:
  // Shares a previously compiled schedule; `threads` == 0 resolves to
  // ThreadPool::defaultThreadCount(). The effective width is clamped to
  // the placement's useful width (never more lanes than partitions).
  ParallelActivityEngine(std::shared_ptr<const CompiledCcss> ccss, unsigned threads);

  void tick() override;
  const char* name() const override { return "essent-ccss-par"; }
  unsigned threadCount() const override { return pool_.numThreads(); }

  // The static placement this engine executes (exported in --stats-json).
  const BspPlacement& placement() const { return placement_; }

  // Cycles whose previous activation count is <= this run inline on the
  // calling thread. Defaults to 4 x lanes; 0 forces the pooled path on
  // every cycle (tests use this to exercise the BSP machinery).
  void setSerialCutoff(uint64_t parts) { serialCutoff_ = parts; }
  uint64_t serialCutoff() const { return serialCutoff_; }

 private:
  // Per-lane counter slab, padded to a cache line to avoid false sharing.
  struct alignas(64) LaneCounters {
    uint64_t opsEvaluated = 0;
    uint64_t activations = 0;
    uint64_t outputComparisons = 0;
    uint64_t triggerSets = 0;
  };

  void runStep(unsigned lane, size_t step);
  void serialSweep();
  void runPartitionOnLane(size_t pos, unsigned lane, std::vector<int32_t>* outbox,
                          LaneCounters& lc);
  void applyRegWriteOnLane(const SchedRegWrite& rw, unsigned lane,
                           std::vector<int32_t>* outbox, LaneCounters& lc);
  void applyMemWriteOnLane(const SchedMemWrite& mw, unsigned lane,
                           std::vector<int32_t>* outbox, LaneCounters& lc);
  void wakeOnLane(const std::vector<int32_t>& parts, unsigned lane,
                  std::vector<int32_t>* outbox, LaneCounters& lc);
  void mergeLaneCounters();
  // After the join: flags for wakes posted during the final super-step
  // (caller-owned time; everything is published by the join).
  void drainFinalMailboxes();

  // Declared before pool_ so the pool width can clamp to the useful width;
  // rebuilt in the ctor body if worker spawning degraded the pool.
  BspPlacement placement_;
  support::ThreadPool pool_;
  std::vector<LaneCounters> lane_;
  std::function<void(unsigned, size_t)> stepFn_;
  // Cross-thread wake mailboxes: mailbox_[parity][src * threads + dst] is
  // pushed only by lane src and drained only by lane dst, parities
  // alternating per super-step (see file header).
  std::vector<std::vector<int32_t>> mailbox_[2];
  uint64_t lastActivations_;
  uint64_t serialCutoff_;
  // Cumulative skipped-partition count feeding the parts_skipped trace
  // counter track (only advanced while a trace session is recording).
  uint64_t partsSkippedBase_ = 0;
};

// Builds a CCSS engine for `threads` lanes (0 = default count) with
// graceful degradation instead of hard failure: a request beyond the
// hardware concurrency or beyond the placement's useful width (one lane
// per partition) is clamped, and when worker threads cannot be created
// (OS limits) the engine falls back to fewer lanes or to the serial
// ActivityEngine. Every degradation appends a human-readable message to
// `warnings` (when non-null) — callers surface them as W06xx diagnostics.
// The returned engine is always usable.
std::unique_ptr<ActivityEngine> makeCcssEngine(const sim::SimIR& ir,
                                               const ScheduleOptions& opts,
                                               unsigned threads,
                                               std::vector<std::string>* warnings = nullptr);

// Shared-structure variant: the schedule is built (or fetched) through the
// design's extension cache, so repeated calls over the same design — e.g.
// every instance of a core::SimFarm batch — pay for one schedule build.
std::unique_ptr<ActivityEngine> makeCcssEngine(
    std::shared_ptr<const sim::CompiledDesign> design, const ScheduleOptions& opts,
    unsigned threads, std::vector<std::string>* warnings = nullptr);

// Same degradation contract over an already-compiled schedule (bench rows
// share one schedule across thread counts through this).
std::unique_ptr<ActivityEngine> makeCcssEngine(std::shared_ptr<const CompiledCcss> ccss,
                                               unsigned threads,
                                               std::vector<std::string>* warnings = nullptr);

}  // namespace essent::core
