// Level-synchronous parallel CCSS activity engine.
//
// The Singular/Static properties make the ordered partition graph acyclic
// with a schedule fixed at compile time, so partitions at the same
// levelization depth (CondPartSchedule::waves) are mutually independent
// within a cycle: their op outputs are disjoint by construction, every
// value they read was produced in an earlier wave (combinational edges) or
// an earlier cycle (state), and every elided state update is ordered after
// all of its cross-partition readers by the elision ordering edges. The
// engine therefore evaluates each wave's active partitions across a
// persistent thread-pool fork/join, with sequential phases around the
// sweep, and stays bit-exact with the serial ActivityEngine — including
// every EngineStats counter and the per-partition profile.
//
// Memory-ordering argument (docs/PARALLEL.md has the long form):
//   * partition evaluation writes are plain; the pool's fork/join barrier
//     publishes them between waves (release on join, acquire on fork);
//   * wake flags are relaxed std::atomic_ref<uint8_t> stores of 1 —
//     idempotent, no read-modify-write — racing only with other setters of
//     the same flag in the same wave, never with the flag's own
//     test-and-clear (combinational wakes target strictly later waves,
//     state wakes strictly earlier ones, whose sweep already finished);
//   * work counters accumulate into per-lane cache-line-padded slots and
//     merge sequentially at the end of the sweep, so profiling sum checks
//     hold exactly as in the serial engine.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/activity_engine.h"
#include "support/threadpool.h"

namespace essent::core {

class ParallelActivityEngine : public ActivityEngine {
 public:
  // Shares a previously compiled schedule; `threads` == 0 resolves to
  // ThreadPool::defaultThreadCount().
  ParallelActivityEngine(std::shared_ptr<const CompiledCcss> ccss, unsigned threads);

  // Deprecated thin wrappers (see docs/API.md): compile a private snapshot
  // of `ir`. Prefer sim::makeEngine or the CompiledCcss overload.
  ParallelActivityEngine(const sim::SimIR& ir, CondPartSchedule schedule, unsigned threads);
  ParallelActivityEngine(const sim::SimIR& ir, const ScheduleOptions& opts, unsigned threads);

  void tick() override;
  const char* name() const override { return "essent-ccss-par"; }
  unsigned threadCount() const override { return pool_.numThreads(); }

 private:
  // Per-lane counter slab, padded to a cache line to avoid false sharing.
  struct alignas(64) LaneCounters {
    uint64_t opsEvaluated = 0;
    uint64_t activations = 0;
    uint64_t outputComparisons = 0;
    uint64_t triggerSets = 0;
  };

  void sweepWave(unsigned lane);
  void runPartitionOnLane(size_t pos, LaneCounters& lc);
  void applyRegWriteOnLane(const SchedRegWrite& rw, LaneCounters& lc);
  void applyMemWriteOnLane(const SchedMemWrite& mw, LaneCounters& lc);
  void wakeOnLane(const std::vector<int32_t>& parts, LaneCounters& lc);
  void mergeLaneCounters();

  support::ThreadPool pool_;
  std::vector<LaneCounters> lane_;
  std::function<void(unsigned)> sweepFn_;
  const std::vector<int32_t>* wave_ = nullptr;
  // Levelization depth of wave_, for per-lane trace spans; written before
  // the fork (published like wave_ by the pool's epoch handoff).
  size_t waveLevel_ = 0;
  // Cumulative skipped-partition count feeding the parts_skipped trace
  // counter track (only advanced while a trace session is recording).
  uint64_t partsSkippedBase_ = 0;
  std::atomic<size_t> cursor_{0};
  // Waves narrower than this run inline on the calling thread: forking
  // costs more than sweeping a handful of flags.
  size_t minForkWidth_;
};

// Builds a CCSS engine for `threads` lanes (0 = default count) with
// graceful degradation instead of hard failure: a request beyond the
// hardware concurrency is clamped, and when worker threads cannot be
// created (OS limits) the engine falls back to fewer lanes or to the
// serial ActivityEngine. Every degradation appends a human-readable
// message to `warnings` (when non-null) — callers surface them as W06xx
// diagnostics. The returned engine is always usable.
std::unique_ptr<ActivityEngine> makeCcssEngine(const sim::SimIR& ir,
                                               const ScheduleOptions& opts,
                                               unsigned threads,
                                               std::vector<std::string>* warnings = nullptr);

// Shared-structure variant: the schedule is built (or fetched) through the
// design's extension cache, so repeated calls over the same design — e.g.
// every instance of a core::SimFarm batch — pay for one schedule build.
std::unique_ptr<ActivityEngine> makeCcssEngine(
    std::shared_ptr<const sim::CompiledDesign> design, const ScheduleOptions& opts,
    unsigned threads, std::vector<std::string>* warnings = nullptr);

}  // namespace essent::core
