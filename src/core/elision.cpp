#include "core/elision.h"

#include <stdexcept>
#include <unordered_set>

namespace essent::core {

size_t ElisionResult::elidedRegCount() const {
  size_t n = 0;
  for (bool b : regElided) n += b;
  return n;
}

size_t ElisionResult::elidedMemWriteCount() const {
  size_t n = 0;
  for (const auto& m : memWriteElided)
    for (bool b : m) n += b;
  return n;
}

namespace {

// True when any partition in `targets` is reachable from `from` in `g`.
bool reachesAny(const graph::DiGraph& g, int32_t from,
                const std::unordered_set<int32_t>& targets) {
  if (targets.empty()) return false;
  if (targets.count(from)) return true;
  std::vector<bool> seen(static_cast<size_t>(g.numNodes()), false);
  std::vector<int32_t> stack = {from};
  seen[static_cast<size_t>(from)] = true;
  while (!stack.empty()) {
    int32_t v = stack.back();
    stack.pop_back();
    for (int32_t w : g.outNeighbors(v)) {
      if (targets.count(w)) return true;
      if (!seen[static_cast<size_t>(w)]) {
        seen[static_cast<size_t>(w)] = true;
        stack.push_back(w);
      }
    }
  }
  return false;
}

}  // namespace

ElisionResult analyzeElision(const Netlist& nl, const Partitioning& parts, bool enable) {
  const sim::SimIR& ir = *nl.ir;
  ElisionResult res;
  res.regElided.assign(ir.regs.size(), false);
  res.memWriteElided.resize(ir.mems.size());
  for (size_t m = 0; m < ir.mems.size(); m++)
    res.memWriteElided[m].assign(ir.mems[m].writers.size(), false);

  // Work on a copy so ordering edges accumulate.
  res.orderedPartGraph = parts.partGraph;
  graph::DiGraph& g = res.orderedPartGraph;

  auto tryElide = [&](int32_t writerNode, const std::vector<int32_t>& readerNodes) -> bool {
    if (!enable) return false;
    int32_t wp = parts.partOf[static_cast<size_t>(writerNode)];
    std::unordered_set<int32_t> readerParts;
    for (int32_t rn : readerNodes) {
      int32_t rp = parts.partOf[static_cast<size_t>(rn)];
      if (rp != wp) readerParts.insert(rp);
    }
    // A path writer ->* reader means some reader consumes values the writer
    // partition produces this cycle, so the reader cannot be forced before
    // the writer: in-place update would clobber the old value it must read.
    if (reachesAny(g, wp, readerParts)) return false;
    for (int32_t rp : readerParts) g.addEdge(rp, wp);
    return true;
  };

  for (size_t r = 0; r < ir.regs.size(); r++)
    res.regElided[r] = tryElide(nl.nodeOfRegWrite[r], nl.regReaders[r]);

  for (size_t m = 0; m < ir.mems.size(); m++) {
    for (size_t w = 0; w < ir.mems[m].writers.size(); w++) {
      res.memWriteElided[m][w] = tryElide(nl.nodeOfMemWrite[m][w], nl.memReaders[m]);
    }
  }

  auto order = g.topoSort();
  if (!order)
    throw std::logic_error("elision invariant violated: ordering edges created a cycle");
  res.schedule = std::move(*order);
  return res;
}

}  // namespace essent::core
