#include "core/elision.h"

#include <algorithm>
#include <stdexcept>

namespace essent::core {

size_t ElisionResult::elidedRegCount() const {
  size_t n = 0;
  for (bool b : regElided) n += b;
  return n;
}

size_t ElisionResult::elidedMemWriteCount() const {
  size_t n = 0;
  for (const auto& m : memWriteElided)
    for (bool b : m) n += b;
  return n;
}

namespace {

// Exact topological order of the ordered partition graph, maintained
// incrementally while elision edges accumulate (Pearce/Kelly local
// reorder). The order turns every per-register reachability probe from a
// full descendant-cone DFS into a position-bounded one: a path from the
// writer partition to a reader can only pass through nodes at positions
// <= the highest reader position, and in the common elidable case (all
// readers scheduled before the writer) the probe is O(1). Without this,
// elision analysis is O(registers x partitions) — the dominant schedule
// phase cost at million-node scale.
class DynTopoOrder {
 public:
  explicit DynTopoOrder(const graph::DiGraph& g) {
    auto order = g.topoSort();
    if (!order) throw std::logic_error("elision: partition graph is cyclic");
    order_ = std::move(*order);
    pos_.resize(order_.size());
    for (size_t i = 0; i < order_.size(); i++)
      pos_[static_cast<size_t>(order_[i])] = static_cast<int32_t>(i);
    visitStamp_.assign(order_.size(), 0);
    targetStamp_.assign(order_.size(), 0);
  }

  // True when any node in `targets` is reachable from `from` in g. Exact:
  // in a valid topological order every node on a path to a target sits at
  // a position <= the maximum target position, so pruning beyond it never
  // cuts a real path.
  bool reachesAny(const graph::DiGraph& g, int32_t from,
                  const std::vector<int32_t>& targets) {
    if (targets.empty()) return false;
    int32_t maxPos = -1;
    tstamp_++;
    for (int32_t t : targets) {
      targetStamp_[static_cast<size_t>(t)] = tstamp_;
      maxPos = std::max(maxPos, pos_[static_cast<size_t>(t)]);
    }
    if (maxPos < pos_[static_cast<size_t>(from)]) return false;
    vstamp_++;
    stack_.clear();
    stack_.push_back(from);
    visitStamp_[static_cast<size_t>(from)] = vstamp_;
    while (!stack_.empty()) {
      int32_t v = stack_.back();
      stack_.pop_back();
      for (int32_t w : g.outNeighbors(v)) {
        if (targetStamp_[static_cast<size_t>(w)] == tstamp_) return true;
        if (pos_[static_cast<size_t>(w)] > maxPos) continue;
        if (visitStamp_[static_cast<size_t>(w)] == vstamp_) continue;
        visitStamp_[static_cast<size_t>(w)] = vstamp_;
        stack_.push_back(w);
      }
    }
    return false;
  }

  // Restores order validity after the edge x -> y was inserted into g.
  // When pos[x] > pos[y], the affected region is the position window
  // [pos[y], pos[x]]: the forward set F (reachable from y within the
  // window) slides after the backward set B (reaching x within the
  // window), each keeping its internal relative order, reusing exactly
  // the slots F and B already occupy. Nodes outside F and B never move;
  // F members only move later and B members only move earlier, which
  // keeps every edge with an untouched endpoint satisfied.
  void edgeAdded(const graph::DiGraph& g, int32_t x, int32_t y) {
    int32_t px = pos_[static_cast<size_t>(x)];
    int32_t py = pos_[static_cast<size_t>(y)];
    if (px < py) return;  // already consistent

    // Forward set from y, pruned at positions > px.
    vstamp_++;
    fwd_.clear();
    stack_.clear();
    visitStamp_[static_cast<size_t>(y)] = vstamp_;
    fwd_.push_back(y);
    stack_.push_back(y);
    while (!stack_.empty()) {
      int32_t v = stack_.back();
      stack_.pop_back();
      for (int32_t w : g.outNeighbors(v)) {
        if (pos_[static_cast<size_t>(w)] > px) continue;
        if (visitStamp_[static_cast<size_t>(w)] == vstamp_) continue;
        visitStamp_[static_cast<size_t>(w)] = vstamp_;
        fwd_.push_back(w);
        stack_.push_back(w);
      }
    }
    // Backward set from x, pruned at positions < py. A member also in the
    // forward set would mean y reaches x — a cycle through the new edge,
    // which the caller's reachability check has excluded.
    uint32_t fwdStamp = vstamp_;
    vstamp_++;
    bwd_.clear();
    stack_.clear();
    visitStamp_[static_cast<size_t>(x)] = vstamp_;
    bwd_.push_back(x);
    stack_.push_back(x);
    while (!stack_.empty()) {
      int32_t v = stack_.back();
      stack_.pop_back();
      for (int32_t w : g.inNeighbors(v)) {
        if (pos_[static_cast<size_t>(w)] < py) continue;
        if (visitStamp_[static_cast<size_t>(w)] == fwdStamp)
          throw std::logic_error("elision invariant violated: ordering edge closes a cycle");
        if (visitStamp_[static_cast<size_t>(w)] == vstamp_) continue;
        visitStamp_[static_cast<size_t>(w)] = vstamp_;
        bwd_.push_back(w);
        stack_.push_back(w);
      }
    }

    auto byPos = [&](int32_t a, int32_t b) {
      return pos_[static_cast<size_t>(a)] < pos_[static_cast<size_t>(b)];
    };
    std::sort(fwd_.begin(), fwd_.end(), byPos);
    std::sort(bwd_.begin(), bwd_.end(), byPos);
    slots_.clear();
    for (int32_t v : bwd_) slots_.push_back(pos_[static_cast<size_t>(v)]);
    for (int32_t v : fwd_) slots_.push_back(pos_[static_cast<size_t>(v)]);
    std::sort(slots_.begin(), slots_.end());
    size_t k = 0;
    auto place = [&](int32_t v) {
      int32_t slot = slots_[k++];
      order_[static_cast<size_t>(slot)] = v;
      pos_[static_cast<size_t>(v)] = slot;
    };
    for (int32_t v : bwd_) place(v);
    for (int32_t v : fwd_) place(v);
  }

 private:
  std::vector<int32_t> order_, pos_;
  std::vector<uint32_t> visitStamp_, targetStamp_;
  uint32_t vstamp_ = 0, tstamp_ = 0;
  std::vector<int32_t> stack_, fwd_, bwd_, slots_;
};

}  // namespace

ElisionResult analyzeElision(const Netlist& nl, const Partitioning& parts, bool enable) {
  const sim::SimIR& ir = *nl.ir;
  ElisionResult res;
  res.regElided.assign(ir.regs.size(), false);
  res.memWriteElided.resize(ir.mems.size());
  for (size_t m = 0; m < ir.mems.size(); m++)
    res.memWriteElided[m].assign(ir.mems[m].writers.size(), false);

  // Work on a copy so ordering edges accumulate.
  res.orderedPartGraph = parts.partGraph;
  graph::DiGraph& g = res.orderedPartGraph;

  DynTopoOrder topo(g);
  std::vector<int32_t> readerParts;
  std::vector<uint32_t> partStamp(static_cast<size_t>(parts.numPartitions()), 0);
  uint32_t rstamp = 0;

  auto tryElide = [&](int32_t writerNode, const std::vector<int32_t>& readerNodes) -> bool {
    if (!enable) return false;
    int32_t wp = parts.partOf[static_cast<size_t>(writerNode)];
    readerParts.clear();
    rstamp++;
    for (int32_t rn : readerNodes) {
      int32_t rp = parts.partOf[static_cast<size_t>(rn)];
      if (rp != wp && partStamp[static_cast<size_t>(rp)] != rstamp) {
        partStamp[static_cast<size_t>(rp)] = rstamp;
        readerParts.push_back(rp);
      }
    }
    // A path writer ->* reader means some reader consumes values the writer
    // partition produces this cycle, so the reader cannot be forced before
    // the writer: in-place update would clobber the old value it must read.
    if (topo.reachesAny(g, wp, readerParts)) return false;
    for (int32_t rp : readerParts)
      if (g.addEdge(rp, wp)) topo.edgeAdded(g, rp, wp);
    return true;
  };

  for (size_t r = 0; r < ir.regs.size(); r++)
    res.regElided[r] = tryElide(nl.nodeOfRegWrite[r], nl.regReaders[r]);

  for (size_t m = 0; m < ir.mems.size(); m++) {
    for (size_t w = 0; w < ir.mems[m].writers.size(); w++) {
      res.memWriteElided[m][w] = tryElide(nl.nodeOfMemWrite[m][w], nl.memReaders[m]);
    }
  }

  auto order = g.topoSort();
  if (!order)
    throw std::logic_error("elision invariant violated: ordering edges created a cycle");
  res.schedule = std::move(*order);
  return res;
}

}  // namespace essent::core
