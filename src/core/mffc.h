// Maximum fanout-free cone (MFFC) decomposition (paper §IV, Figure 3).
//
// The MFFC of a node v is the largest set of ancestors of v such that every
// descendant of a member is either inside the cone or is v itself. MFFCs
// are the bootstrap partitions of the acyclic partitioner: any value
// computed inside an MFFC is visible only within it and at its root, which
// guarantees the decomposition is acyclic (Cong et al., DAC'94).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace essent::core {

// Decomposes `g` into MFFCs, crawling upward from the sink nodes (per the
// paper, sinks are typically state-element writes or external outputs).
// Returns the partition id of every node; ids are dense [0, numParts).
std::vector<int32_t> mffcDecompose(const graph::DiGraph& g, int32_t* numParts);

// The MFFC rooted at a single node (for tests / inspection): all ancestors
// whose every fanout path leads back into the cone.
std::vector<graph::NodeId> mffcOf(const graph::DiGraph& g, graph::NodeId root);

}  // namespace essent::core
