// The ESSENT-style CCSS activity engine (paper §III, Figure 1).
//
// Executes a CondPartSchedule: per cycle it
//   1. compares external inputs against their previous values and wakes the
//      consumer partitions of any that changed;
//   2. sweeps the partitions in the singular static schedule order; an
//      active partition first deactivates itself, saves the old values of
//      its outputs, evaluates its ops with full-cycle style straight-line
//      code, applies its elided state-element updates (waking state
//      consumers on change — effective next cycle, since ordering edges put
//      every reader before the writer), then compares its outputs and wakes
//      the consumers of those that changed (push-direction triggering,
//      branchless OR-reduction of the change flags per output);
//   3. fires printf/stop side effects from the (stale-but-correct) enable
//      signals;
//   4. runs phase 2: non-elided registers copy next->current and memory
//      writes commit, waking consumers on change.
//
// Overhead counters map onto Figure 7's decomposition: partitionChecks is
// the static overhead, outputComparisons/triggerSets the dynamic overhead,
// and opsEvaluated the base work (effective activity = opsEvaluated /
// (totalOps * cycles)).
#pragma once

#include <memory>

#include "core/schedule.h"
#include "sim/engine.h"

namespace essent::core {

// Per-partition runtime counters, gathered only while profiling is on.
struct PartitionProfile {
  uint64_t activations = 0;   // times the partition ran
  uint64_t opsEvaluated = 0;  // ops executed across those runs
  uint64_t wakesIssued = 0;   // consumer flags this partition's runs set
};

// Profile of one ActivityEngine run: per-partition counters plus a
// cycle-window activity timeline (partition activations per window of
// `windowCycles` cycles — the runtime analogue of Figure 5's per-cycle
// activity traces, coarse enough to stay cheap on million-cycle runs).
struct ActivityProfile {
  uint64_t profiledCycles = 0;
  uint32_t windowCycles = 256;
  std::vector<PartitionProfile> parts;
  std::vector<uint64_t> activationsPerWindow;
};

class ActivityEngine : public sim::Engine {
 public:
  // The schedule must have been built from a Netlist over the same SimIR.
  ActivityEngine(const sim::SimIR& ir, CondPartSchedule schedule);

  // Convenience: build netlist + partitioning + schedule with the options.
  ActivityEngine(const sim::SimIR& ir, const ScheduleOptions& opts);

  void tick() override;
  void resetState() override;
  const char* name() const override { return "essent-ccss"; }

  // Worker lanes used by the partition sweep (1 for the serial engine;
  // ParallelActivityEngine overrides).
  virtual unsigned threadCount() const { return 1; }

  const CondPartSchedule& schedule() const { return sched_; }

  // Fraction of ops evaluated over all cycles so far (Figure 7's
  // "effective activity factor").
  double effectiveActivity() const;

  // Per-partition profiling. Off by default: the unprofiled tick path pays
  // exactly one predictable branch per active partition and one per cycle.
  // Enabling mid-run starts counting from the current cycle; counters are
  // cleared on resetState() (in step with EngineStats) and by setting the
  // window. While profiling has been on since the last reset, the profile
  // op counts sum to stats().opsEvaluated and the activation counts to
  // stats().partitionActivations.
  void setProfiling(bool on);
  bool profiling() const { return profiling_; }
  const ActivityProfile& profile() const { return prof_; }
  void setProfileWindow(uint32_t cycles);  // clears the profile; cycles >= 1

 protected:
  void onStateClobbered() override {
    std::fill(active_.begin(), active_.end(), uint8_t{1});
    firstCycle_ = true;
  }

  // Shared with ParallelActivityEngine (which overrides only the partition
  // sweep; phases 1, 3, and 4 of the tick stay sequential).
  CondPartSchedule sched_;
  std::vector<uint8_t> active_;
  std::vector<uint64_t> prevInputs_;
  // Flat old-value buffer for all partition outputs.
  std::vector<uint64_t> outputSave_;
  std::vector<uint32_t> outputSaveOff_;  // parallel to flattened outputs
  std::vector<size_t> partOutBase_;      // partition -> first flattened output
  bool firstCycle_ = true;
  bool profiling_ = false;
  ActivityProfile prof_;

  void clearProfile();
  void runPartition(size_t pos, const CondPart& part);
  void applyRegWrite(const SchedRegWrite& rw);
  void applyMemWrite(const SchedMemWrite& mw);
  void wake(const std::vector<int32_t>& parts);
  // Tick phase 1: wake consumers of changed external inputs and latch the
  // new input values.
  void sweepInputs();
  // Tick phases 3 + 4: side effects, then the non-elided state commits.
  void finishCycle();
  // Folds the per-cycle activation delta into the profile timeline.
  void recordProfiledCycle(uint64_t activationsDelta);
};

}  // namespace essent::core
