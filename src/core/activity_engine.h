// The ESSENT-style CCSS activity engine (paper §III, Figure 1).
//
// Executes a CondPartSchedule: per cycle it
//   1. compares external inputs against their previous values and wakes the
//      consumer partitions of any that changed;
//   2. sweeps the partitions in the singular static schedule order; an
//      active partition first deactivates itself, saves the old values of
//      its outputs, evaluates its ops with full-cycle style straight-line
//      code, applies its elided state-element updates (waking state
//      consumers on change — effective next cycle, since ordering edges put
//      every reader before the writer), then compares its outputs and wakes
//      the consumers of those that changed (push-direction triggering,
//      branchless OR-reduction of the change flags per output);
//   3. fires printf/stop side effects from the (stale-but-correct) enable
//      signals;
//   4. runs phase 2: non-elided registers copy next->current and memory
//      writes commit, waking consumers on change.
//
// Overhead counters map onto Figure 7's decomposition: partitionChecks is
// the static overhead, outputComparisons/triggerSets the dynamic overhead,
// and opsEvaluated the base work (effective activity = opsEvaluated /
// (totalOps * cycles)).
#pragma once

#include <memory>

#include "core/schedule.h"
#include "sim/engine.h"

namespace essent::core {

// Per-partition runtime counters, gathered only while profiling is on.
struct PartitionProfile {
  uint64_t activations = 0;   // times the partition ran
  uint64_t opsEvaluated = 0;  // ops executed across those runs
  uint64_t wakesIssued = 0;   // consumer flags this partition's runs set
};

// Profile of one ActivityEngine run: per-partition counters plus a
// cycle-window activity timeline (partition activations per window of
// `windowCycles` cycles — the runtime analogue of Figure 5's per-cycle
// activity traces, coarse enough to stay cheap on million-cycle runs).
struct ActivityProfile {
  uint64_t profiledCycles = 0;
  uint32_t windowCycles = 256;
  std::vector<PartitionProfile> parts;
  std::vector<uint64_t> activationsPerWindow;
};

// The design-independent half of the compiled CCSS structure: the
// CondPartSchedule plus the static layout of the flat old-value save area
// for partition outputs (the save buffer itself is per-instance mutable
// state). This is what CompiledCcss::get caches inside the design's
// extension cache, and it deliberately holds no pointer back to the
// design: a back-pointer from a cache entry would close a shared_ptr
// cycle (design -> ext_ -> schedule -> design) and leak both.
struct CcssSchedule {
  CondPartSchedule sched;
  std::vector<uint32_t> outputSaveOff;  // parallel to flattened outputs
  std::vector<size_t> partOutBase;      // partition -> first flattened output
  size_t saveWords = 0;                 // words in the per-instance save buffer
};

// Immutable CCSS structure shared by every activity-engine instance over
// the same design: the design plus its (possibly cache-shared) schedule
// body. Cheap to copy — two shared_ptrs.
struct CompiledCcss {
  std::shared_ptr<const sim::CompiledDesign> design;
  std::shared_ptr<const CcssSchedule> body;

  // Wraps an already-built schedule (must come from a Netlist over the
  // same SimIR).
  static std::shared_ptr<const CompiledCcss> compile(
      std::shared_ptr<const sim::CompiledDesign> design, CondPartSchedule sched);
  // Builds netlist + partitioning + schedule with the options.
  static std::shared_ptr<const CompiledCcss> compile(
      std::shared_ptr<const sim::CompiledDesign> design, const ScheduleOptions& opts);
  // Cached variant: one schedule per (design, options), shared through the
  // design's extension cache — what sim::makeEngine and core::SimFarm use
  // so N concurrent instances pay for one schedule build.
  static std::shared_ptr<const CompiledCcss> get(
      const std::shared_ptr<const sim::CompiledDesign>& design, const ScheduleOptions& opts);
};

class ActivityEngine : public sim::Engine {
 public:
  // Shares a previously compiled schedule; the engine owns only its
  // mutable state (arena, wake flags, save buffer, profile).
  explicit ActivityEngine(std::shared_ptr<const CompiledCcss> ccss);

  void tick() override;
  void resetState() override;
  const char* name() const override { return "essent-ccss"; }

  // Worker lanes used by the partition sweep (1 for the serial engine;
  // ParallelActivityEngine overrides).
  virtual unsigned threadCount() const { return 1; }

  const CondPartSchedule& schedule() const { return sched_; }

  // Fraction of ops evaluated over all cycles so far (Figure 7's
  // "effective activity factor").
  double effectiveActivity() const;

  // Per-partition profiling. Off by default: the unprofiled tick path pays
  // exactly one predictable branch per active partition and one per cycle.
  // Enabling mid-run starts counting from the current cycle; counters are
  // cleared on resetState() (in step with EngineStats) and by setting the
  // window. While profiling has been on since the last reset, the profile
  // op counts sum to stats().opsEvaluated and the activation counts to
  // stats().partitionActivations.
  void setProfiling(bool on);
  bool profiling() const { return profiling_; }
  const ActivityProfile& profile() const { return prof_; }
  void setProfileWindow(uint32_t cycles);  // clears the profile; cycles >= 1

 protected:
  void onStateClobbered() override {
    std::fill(active_.begin(), active_.end(), uint8_t{1});
    firstCycle_ = true;
  }

  // Shared with ParallelActivityEngine (which overrides only the partition
  // sweep; phases 1, 3, and 4 of the tick stay sequential).
  // Immutable structure (shared across instances) ...
  std::shared_ptr<const CompiledCcss> ccss_;
  const CondPartSchedule& sched_;              // = ccss_->body->sched
  const std::vector<uint32_t>& outputSaveOff_; // = ccss_->body->outputSaveOff
  const std::vector<size_t>& partOutBase_;     // = ccss_->body->partOutBase
  // ... and this instance's mutable state.
  std::vector<uint8_t> active_;
  std::vector<uint64_t> prevInputs_;
  // Flat old-value buffer for all partition outputs.
  std::vector<uint64_t> outputSave_;
  bool firstCycle_ = true;
  bool profiling_ = false;
  ActivityProfile prof_;

  void clearProfile();
  void runPartition(size_t pos, const CondPart& part);
  void applyRegWrite(const SchedRegWrite& rw);
  void applyMemWrite(const SchedMemWrite& mw);
  void wake(const std::vector<int32_t>& parts);
  // Tick phase 1: wake consumers of changed external inputs and latch the
  // new input values.
  void sweepInputs();
  // Tick phases 3 + 4: side effects, then the non-elided state commits.
  void finishCycle();
  // Folds the per-cycle activation delta into the profile timeline.
  void recordProfiledCycle(uint64_t activationsDelta);
};

}  // namespace essent::core
