// State-element update elision (paper §III-B1).
//
// Registers (and memories) are initially split into a source (current value)
// and a sink (update action). The second storage location and copy can be
// eliminated — the update applied in place, inside its conditionally
// executed partition — iff every partition that reads the state element can
// be scheduled before the partition that writes it. At the partition level
// that is exactly: no directed path from the writer partition to any reader
// partition; ordering edges reader -> writer are then added to pin the
// schedule. Elided state elements wake their consumers immediately on
// change (safe because all readers already ran this cycle; the flags
// persist into the next cycle), including a self-wakeup for feedback.
//
// Elisions are processed greedily against the graph *including previously
// added ordering edges*, because two individually-safe elisions can be
// jointly cyclic.
#pragma once

#include <vector>

#include "core/netlist.h"
#include "core/partitioner.h"

namespace essent::core {

struct ElisionResult {
  // Per register index: update applied in place inside its partition.
  std::vector<bool> regElided;
  // Per mem index, per writer index.
  std::vector<std::vector<bool>> memWriteElided;
  // Partition graph augmented with the ordering edges (still acyclic).
  graph::DiGraph orderedPartGraph;
  // Final topological schedule honoring the ordering edges.
  std::vector<int32_t> schedule;

  size_t elidedRegCount() const;
  size_t elidedMemWriteCount() const;
};

// `enable` false yields the no-elision result (every state element updates
// in a global second phase) for the ablation bench.
ElisionResult analyzeElision(const Netlist& nl, const Partitioning& parts, bool enable = true);

}  // namespace essent::core
