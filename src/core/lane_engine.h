// SIMD instance-parallel lane engine (ROADMAP open item 1).
//
// Simulates L instances ("lanes", L <= 64) of one compiled design at once.
// Instead of L private SimState arenas, every signal word is stored as a
// structure-of-arrays slot across lanes, so each ExecOp is decoded ONCE per
// instruction and evaluated for all lanes — amortizing the interpreter
// dispatch that makes N scalar farm instances throughput-neutral versus
// sequential runs, and turning identical-logic/different-data batches into
// straight SIMD loops (AVX2/AVX-512 kernels behind runtime dispatch, with
// auto-vectorized portable loops as the universal fallback; see
// core/lane_simd.h and docs/SIMD.md).
//
// Activity skipping composes with lanes: a partition executes if ANY lane's
// wake mask is set, and the execution carries that per-lane mask so that
//   - combinational op evaluation runs full-width (inactive lanes recompute
//     values from unchanged inputs — bit-identical by construction),
//   - register/memory COMMITS and all EngineStats counters are masked to
//     the active lanes, keeping per-lane stats and effective activity
//     exactly equal to a solo ActivityEngine run of that lane,
//   - lanes that hit stop/assert are retired from the live mask (their
//     state freezes) while the surviving lanes keep simulating.
//
// Per-lane access goes through LaneView — a sim::Engine whose state
// accessors redirect into the SoA arena — so harness code, the farm, and
// the conformance suite drive lanes exactly like scalar engines.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/activity_engine.h"
#include "core/lane_simd.h"
#include "sim/engine.h"

namespace essent::core {

// Structure-of-arrays layout across lanes, derived from the scalar word
// layout. Signals of width <= 1 are bit-sliced ("packed"): one uint64 word
// holds the bit of every lane, so 1-bit nets cost 1/64th of the naive SoA
// footprint and their ops reduce to single bitwise instructions. Wider
// signals place scalar word w of lane l at off[sig] + w*stride + l, with
// the stride padded to a multiple of 8 (when lanes > 1) so SIMD loops never
// straddle slots. Memories are always unpacked: row r word w of lane l at
// (r*rowWords + w)*stride + l.
struct LaneStateLayout {
  unsigned lanes = 1;
  uint32_t stride = 1;
  std::vector<uint32_t> off;     // per signal: first word in the lane arena
  std::vector<uint8_t> packed;   // per signal: 1 = bit-sliced across lanes
  uint32_t totalWords = 0;

  bool isPacked(int32_t sig) const { return packed[static_cast<size_t>(sig)] != 0; }

  static LaneStateLayout build(const sim::SimIR& ir, const sim::Layout& scalar,
                               unsigned lanes);
};

// Kernel tier chosen per op when the lane program is built.
enum class LaneKernel : uint8_t {
  WideFast,     // single-word unpacked operands: one loop over the stride
  Packed1,      // all operands bit-sliced: one uint64 op covers every lane
  GenericFast,  // single-word, mixed packing or div/rem: per-lane scalar
  SlowBV,       // multi-word: per-lane BitVec reference semantics
  ConstOp,      // broadcast once at init/reset, excluded from per-cycle work
  MemReadOp,    // per-lane gather from the lane memory arena
};

struct LaneExecOp {
  sim::ExecOp op;  // scalar record (widths, immediates, signedness)
  LaneKernel kernel = LaneKernel::GenericFast;
  // Lane-arena operand offsets + packedness (UINT32_MAX when absent).
  uint32_t dOff = UINT32_MAX, aOff = UINT32_MAX, bOff = UINT32_MAX, cOff = UINT32_MAX;
  bool dPacked = false, aPacked = false, bPacked = false, cPacked = false;
};

// Immutable lane program: the SoA layout plus the kernel-annotated op
// stream, parallel to design->exec. Cached in the design's extension cache
// per stride, so every lane group over the same design shares one build.
struct LaneProgram {
  LaneStateLayout layout;
  std::vector<LaneExecOp> ops;

  static std::shared_ptr<const LaneProgram> get(
      const std::shared_ptr<const sim::CompiledDesign>& design, unsigned lanes);
};

class LaneEngine;

// sim::Engine view of one lane. All state accessors redirect into the
// group's SoA arena; the inherited stats_/stopped_/exitCode_/printBuf_
// members hold this lane's own bookkeeping (the group writes them during
// tick). tick() throws std::logic_error — lanes advance together through
// LaneEngine::tick().
class LaneView final : public sim::Engine {
 public:
  void tick() override;
  const char* name() const override { return "essent-lane"; }

  void poke(const std::string& name, uint64_t value) override;
  void pokeBV(const std::string& name, const BitVec& value) override;
  uint64_t peek(const std::string& name) const override;
  BitVec peekBV(const std::string& name) const override;
  uint64_t peekSig(int32_t sig) const override;
  BitVec peekSigBV(int32_t sig) const override;
  void pokeMem(const std::string& memName, uint64_t addr, uint64_t value) override;
  uint64_t peekMem(const std::string& memName, uint64_t addr) const override;

  // Zeroes this lane's slice (state + counters), re-broadcasts constants,
  // un-retires the lane, and re-arms its activity tracking.
  void resetState() override;
  // Scalar-compatible: replays the (seed, slot) draw sequence into the lane
  // slice, so lane.randomizeState(s) == scalarEngine.randomizeState(s).
  void randomizeState(uint64_t seed) override;
  // Snapshots are in the scalar layout — interchangeable with every other
  // engine kind over the same design.
  Snapshot saveState() const override;
  void restoreState(const Snapshot& snapshot) override;

  unsigned laneIndex() const { return lane_; }

 private:
  friend class LaneEngine;
  LaneView(std::shared_ptr<const sim::CompiledDesign> design, LaneEngine* group,
           unsigned lane);

  LaneEngine* group_;
  unsigned lane_;
};

// The lane group itself. Not a sim::Engine — per-lane access goes through
// lane(l); sim::makeEngine(EngineKind::Lane) wraps it in the broadcast
// adapter below.
class LaneEngine {
 public:
  // lanes is clamped to [1, 64].
  LaneEngine(std::shared_ptr<const CompiledCcss> ccss, unsigned lanes);
  ~LaneEngine();

  LaneEngine(const LaneEngine&) = delete;
  LaneEngine& operator=(const LaneEngine&) = delete;

  unsigned lanes() const { return lanes_; }
  const sim::SimIR& ir() const { return *ir_; }
  const std::shared_ptr<const CompiledCcss>& compiled() const { return ccss_; }
  const LaneProgram& program() const { return *prog_; }

  // Per-lane engine handle (poke/peek/stats/printOutput/save/restore).
  sim::Engine& lane(unsigned l) { return *views_.at(l); }
  const sim::Engine& lane(unsigned l) const { return *views_.at(l); }

  // One clock cycle for every live lane.
  void tick();

  // Live lanes: bit l set while lane l still simulates. Lanes leave the
  // mask when they stop (stop/assert) or are retired externally (cycle
  // budgets, per-lane errors). A retiring lane's VISIBLE state is captured
  // into a scalar-layout freeze buffer at that instant: surviving lanes
  // re-evaluate combinational slots full-stride (the purity invariant), so
  // the arena keeps moving, but the retired lane's peeks keep answering
  // exactly what a solo run that stopped on the same cycle would — until
  // reset/restore revives it.
  uint64_t liveMask() const { return liveMask_; }
  bool laneLive(unsigned l) const { return (liveMask_ >> l) & 1; }
  void retireLane(unsigned l);

  // Per-lane effective activity (Figure 7), exact versus a solo run.
  double laneEffectiveActivity(unsigned l) const;

  // Resolved SIMD tier of this group's wide kernels.
  const char* simdBackend() const { return laneSimdTierName(tier_); }

  // Group-level counters (per-instruction amortization bookkeeping):
  // group ticks, partitions run/skipped at group granularity, and the
  // total of per-lane skips inside executed partitions (lanes that rode
  // along inactive — the masked-activity composition at work).
  uint64_t groupTicks() const { return groupTicks_; }
  uint64_t groupPartitionRuns() const { return groupPartitionRuns_; }
  uint64_t groupPartitionSkips() const { return groupPartitionSkips_; }
  uint64_t maskedLaneSkips() const { return maskedLaneSkips_; }

 private:
  friend class LaneView;

  // --- immutable structure (shared) ---
  std::shared_ptr<const CompiledCcss> ccss_;
  std::shared_ptr<const LaneProgram> prog_;
  const sim::SimIR* ir_;
  const sim::Layout* scalarLayout_;
  const CondPartSchedule& sched_;
  unsigned lanes_;
  uint32_t stride_;
  uint64_t allMask_;  // bits 0..lanes-1
  LaneSimdTier tier_;
  LaneWideFn wideFn_;  // nullptr on the portable tier

  // --- mutable lane state ---
  std::vector<uint64_t> vals_;        // SoA arena (LaneStateLayout)
  std::vector<std::vector<uint64_t>> memWords_;  // per mem, lane-strided
  std::vector<uint32_t> memRowWords_;            // scalar words per mem row
  std::vector<uint64_t> prevInputs_;  // lane arena copy for input diffing
  std::vector<uint64_t> activeMask_;  // per partition: lanes with wakes
  std::vector<uint32_t> outputSaveOff_;  // flattened outputs -> save offset
  std::vector<size_t> partOutBase_;      // partition -> first flat output
  std::vector<uint64_t> outputSave_;     // old-value buffer, lane-strided
  std::vector<uint64_t> scratch_;        // 4 stride rows: staged a/b/c/d for
                                         // mixed packed/unpacked fast ops
  uint64_t liveMask_;
  uint64_t freshMask_;  // lanes whose next tick skips input diffing
  // Per lane: scalar-layout copy of the signal arena captured at
  // retirement (empty while the lane is live). Memories need no freezing —
  // their commits are already masked to live lanes.
  std::vector<std::vector<uint64_t>> frozenVals_;
  std::vector<std::unique_ptr<LaneView>> views_;
  uint64_t groupTicks_ = 0;
  uint64_t groupPartitionRuns_ = 0;
  uint64_t groupPartitionSkips_ = 0;
  uint64_t maskedLaneSkips_ = 0;
  // Per-lane counter accumulators (SoA, lanes_ entries each). The hot tick
  // paths bump these with branchless masked adds — one contiguous pass per
  // event instead of a bit-scan over scattered per-view EngineStats — and
  // flushLaneStats() folds them into views_[l]->stats_ once per tick, so
  // the non-virtual Engine::stats() stays exact between ticks.
  std::vector<uint64_t> accChecks_, accActs_, accOps_, accCmps_, accTrigs_;

  // --- lane-word access (packed-aware) ---
  uint64_t laneWord(uint32_t off, bool packed, unsigned l) const {
    return packed ? (vals_[off] >> l) & 1 : vals_[off + l];
  }
  uint64_t laneSigWord0(int32_t sig, unsigned l) const;
  void storeLaneWord(uint32_t off, bool packed, unsigned l, uint64_t v);
  BitVec laneLoadBV(int32_t sig, unsigned l) const;
  void laneStoreBV(int32_t sig, const BitVec& v, bool signedExtend, unsigned l);

  // --- tick phases ---
  void sweepInputs();
  void runPartition(size_t pos, const CondPart& part, uint64_t m);
  void applyRegWrite(const SchedRegWrite& rw, uint64_t m);
  void applyMemWrite(const SchedMemWrite& mw, uint64_t m);
  void wakeMask(const std::vector<int32_t>& parts, uint64_t m);
  void finishCycle();
  // acc[l] += k for every lane l set in m. Dense masks (the common case —
  // all live lanes active together) take the unconditional vectorizable
  // loop; sparse masks bit-scan and touch only the set lanes.
  void addMasked(std::vector<uint64_t>& acc, uint64_t m, uint64_t k) {
    uint64_t* a = acc.data();
    if (m == allMask_) {
      for (unsigned l = 0; l < lanes_; l++) a[l] += k;
      return;
    }
    for (uint64_t t = m; t != 0; t &= t - 1)
      a[static_cast<unsigned>(__builtin_ctzll(t))] += k;
  }
  void flushLaneStats();

  // --- op evaluation ---
  void evalOp(const LaneExecOp& lop);
  bool evalOpChangedAny(const LaneExecOp& lop);
  void evalSlowLane(const LaneExecOp& lop, unsigned l);
  void evalSuperRangeLanes(const LaneExecOp* ops, size_t count);
  void evalConstLane(const LaneExecOp& lop, unsigned l);
  uint64_t outputDiffMask(int32_t sig, uint32_t saveOff) const;
  std::string laneFormatPrintf(const sim::PrintInfo& p, unsigned l) const;

  // --- per-lane lifecycle (LaneView entry points) ---
  void pokeLane(int32_t sig, unsigned l, uint64_t value);
  void pokeMemLane(size_t mem, unsigned l, uint64_t addr, uint64_t value);
  uint64_t peekMemLane(size_t mem, unsigned l, uint64_t addr) const;
  void randomizeLane(unsigned l, uint64_t seed);
  sim::Engine::Snapshot saveLane(unsigned l) const;
  void restoreLane(unsigned l, const sim::Engine::Snapshot& snapshot);
  void resetLaneState(unsigned l);
  // Re-arms activity tracking for one lane after its state was clobbered
  // (randomize/restore/reset): all partitions pending, input diff skipped.
  void rearmLane(unsigned l);
  // Capture the lane's visible signal state at retirement / mirror a poke
  // into an existing freeze buffer.
  void freezeLane(unsigned l);
  void syncFrozenSig(unsigned l, int32_t sig);
};

// Scalar adapter: the sim::Engine that sim::makeEngine(EngineKind::Lane)
// returns. Owns a LaneEngine of `lanes` lanes, broadcasts pokes to all of
// them, reads lane 0, and mirrors lane 0's bookkeeping after each tick —
// so every lane computes the same values and the adapter is bit-identical
// to a scalar engine while exercising the full SIMD path (this is how the
// differential fuzzer cross-checks the kernels).
class LaneBroadcastEngine final : public sim::Engine {
 public:
  LaneBroadcastEngine(std::shared_ptr<const CompiledCcss> ccss, unsigned lanes);

  void tick() override;
  const char* name() const override { return "essent-lane"; }

  void poke(const std::string& name, uint64_t value) override;
  void pokeBV(const std::string& name, const BitVec& value) override;
  uint64_t peek(const std::string& name) const override;
  BitVec peekBV(const std::string& name) const override;
  uint64_t peekSig(int32_t sig) const override;
  BitVec peekSigBV(int32_t sig) const override;
  void pokeMem(const std::string& memName, uint64_t addr, uint64_t value) override;
  uint64_t peekMem(const std::string& memName, uint64_t addr) const override;
  void resetState() override;
  void randomizeState(uint64_t seed) override;
  Snapshot saveState() const override;
  void restoreState(const Snapshot& snapshot) override;

  LaneEngine& group() { return group_; }
  const LaneEngine& group() const { return group_; }

  // Lane-0 effective activity (identical across lanes under broadcast).
  double effectiveActivity() const { return group_.laneEffectiveActivity(0); }

 private:
  LaneEngine group_;
  void syncFromLane0();
};

}  // namespace essent::core
