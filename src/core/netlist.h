// Computation-node netlist over a SimIR.
//
// This is the graph the acyclic partitioner operates on (paper §IV). Nodes
// are units of work: combinational ops (including memory reads), state
// element update actions (register writes, memory writes), and side-effect
// sinks (printf/stop). State elements are *split* (§II): a register's
// current value is an external source (no node) while its update is a sink
// node, so feedback through state never creates graph cycles. Edges are
// combinational dataflow only.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/sim_ir.h"

namespace essent::core {

enum class NodeKind : uint8_t {
  Op,        // index = op index in SimIR::ops (index2 = supernode id or -1)
  RegWrite,  // index = register index in SimIR::regs
  MemWrite,  // index = mem index, index2 = writer index
  Print,     // index = print index
  Stop,      // index = stop index
  Assert,    // index = assert index
};

struct NetNode {
  NodeKind kind = NodeKind::Op;
  int32_t index = -1;
  int32_t index2 = -1;
};

struct Netlist {
  const sim::SimIR* ir = nullptr;
  std::vector<NetNode> nodes;
  graph::DiGraph g;  // acyclic by construction (ops are topo-ordered)

  // Reverse maps.
  std::vector<int32_t> nodeOfOp;        // op index -> node id
  std::vector<int32_t> nodeOfRegWrite;  // reg index -> node id
  std::vector<std::vector<int32_t>> nodeOfMemWrite;  // [mem][writer] -> node id

  // External source signals: per signal id, the consumer node ids. Only
  // populated for Input and Register signals (the sources of the split
  // graph); combinational signals are covered by graph edges instead.
  std::vector<std::vector<int32_t>> sourceConsumers;

  // For each register index: node ids of ops that read the register's
  // output signal (its "readers" for the update-elision analysis).
  std::vector<std::vector<int32_t>> regReaders;
  // For each mem index: node ids of its MemRead ops.
  std::vector<std::vector<int32_t>> memReaders;

  // Signals read by each node (deduplicated), used by the partitioner to
  // track per-partition input-signal sets.
  std::vector<std::vector<int32_t>> nodeReads;
  // Producing node of each signal (-1 for sources: inputs and registers).
  std::vector<int32_t> producerOf;

  // Sinks of the graph (out-degree 0): state updates, side effects, and
  // output-port copies; the MFFC decomposition crawls up from these.
  std::vector<int32_t> sinks() const;

  static Netlist build(const sim::SimIR& ir);
};

}  // namespace essent::core
