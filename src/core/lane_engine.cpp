#include "core/lane_engine.h"

#include <stdexcept>

#include "obs/trace.h"
#include "sim/op_eval.h"

namespace essent::core {

using essent::BitVec;
using sim::ExecOp;
using sim::maskW;
using sim::MemInfo;
using sim::OpCode;
using sim::RegInfo;

namespace {

inline unsigned lowestLane(uint64_t mask) {
  return static_cast<unsigned>(__builtin_ctzll(mask));
}

inline unsigned laneCount(uint64_t mask) {
  return static_cast<unsigned>(__builtin_popcountll(mask));
}

inline uint64_t laneBit(unsigned l) { return uint64_t{1} << l; }

size_t memIndexOrThrow(const sim::SimIR& ir, const std::string& name) {
  for (size_t m = 0; m < ir.mems.size(); m++)
    if (ir.mems[m].name == name) return m;
  throw std::out_of_range("no memory named '" + name + "'");
}

}  // namespace

// ---------------------------------------------------------------------------
// Layout + program build

LaneStateLayout LaneStateLayout::build(const sim::SimIR& ir, const sim::Layout& scalar,
                                       unsigned lanes) {
  LaneStateLayout lay;
  lay.lanes = lanes < 1 ? 1 : (lanes > 64 ? 64 : lanes);
  // Pad the stride to a multiple of 8 words (when grouping at all) so SIMD
  // loops always see whole vectors; padding lanes are dead weight the wide
  // kernels may scribble on, never read as lane state.
  lay.stride = lay.lanes == 1 ? 1 : ((lay.lanes + 7) / 8) * 8;
  lay.off.resize(ir.signals.size());
  lay.packed.resize(ir.signals.size());
  uint32_t off = 0;
  for (size_t s = 0; s < ir.signals.size(); s++) {
    lay.packed[s] = ir.signals[s].width <= 1 ? 1 : 0;
    lay.off[s] = off;
    off += lay.packed[s] ? 1 : scalar.nwords[s] * lay.stride;
  }
  lay.totalWords = off;
  return lay;
}

namespace {

// True when every 1-bit operand/dest is packed and the op's 1-bit semantics
// reduce to plain bitwise words (one instruction covers all 64 lanes).
bool packed1Eligible(const ExecOp& op, const LaneExecOp& lop) {
  if (!op.fast || op.destW != 1 || !lop.dPacked) return false;
  if (lop.aOff != UINT32_MAX && !lop.aPacked) return false;
  if (lop.bOff != UINT32_MAX && !lop.bPacked) return false;
  if (lop.cOff != UINT32_MAX && !lop.cPacked) return false;
  switch (op.code) {
    case OpCode::And:
    case OpCode::Or:
    case OpCode::Xor:
    case OpCode::Not:
    case OpCode::Eq:
    case OpCode::Neq:
    case OpCode::Mux:
    case OpCode::Copy:
    case OpCode::Pad:
    case OpCode::Tail:
      return true;
    default:
      return false;
  }
}

std::shared_ptr<const LaneProgram> buildLaneProgram(const sim::CompiledDesign& design,
                                                    unsigned strideLanes) {
  auto p = std::make_shared<LaneProgram>();
  p->layout = LaneStateLayout::build(design.ir, design.layout, strideLanes);
  p->ops.reserve(design.exec.size());
  for (const ExecOp& op : design.exec) {
    LaneExecOp lop;
    lop.op = op;
    auto bind = [&](int32_t sig, uint32_t scalarOff, uint32_t& off, bool& packed) {
      if (scalarOff == UINT32_MAX || sig < 0) return;
      off = p->layout.off[static_cast<size_t>(sig)];
      packed = p->layout.isPacked(sig);
    };
    bind(op.dest, op.destOff, lop.dOff, lop.dPacked);
    bind(op.args[0], op.aOff, lop.aOff, lop.aPacked);
    bind(op.args[1], op.bOff, lop.bOff, lop.bPacked);
    bind(op.args[2], op.cOff, lop.cOff, lop.cPacked);
    if (op.code == OpCode::Const) lop.kernel = LaneKernel::ConstOp;
    else if (!op.fast) lop.kernel = LaneKernel::SlowBV;
    else if (op.code == OpCode::MemRead) lop.kernel = LaneKernel::MemReadOp;
    else if (packed1Eligible(op, lop)) lop.kernel = LaneKernel::Packed1;
    else if (!lop.dPacked && (lop.aOff == UINT32_MAX || !lop.aPacked) &&
             (lop.bOff == UINT32_MAX || !lop.bPacked) &&
             (lop.cOff == UINT32_MAX || !lop.cPacked))
      lop.kernel = LaneKernel::WideFast;
    else lop.kernel = LaneKernel::GenericFast;
    p->ops.push_back(std::move(lop));
  }
  return p;
}

}  // namespace

std::shared_ptr<const LaneProgram> LaneProgram::get(
    const std::shared_ptr<const sim::CompiledDesign>& design, unsigned lanes) {
  const unsigned clamped = lanes < 1 ? 1 : (lanes > 64 ? 64 : lanes);
  const unsigned stride = clamped == 1 ? 1 : ((clamped + 7) / 8) * 8;
  // The program depends only on the stride (packing is width-driven), so
  // lane counts sharing a stride share one cached build.
  const std::string key = "lane/stride=" + std::to_string(stride);
  return design->getOrBuildExt<LaneProgram>(
      key, [&design, stride]() { return buildLaneProgram(*design, stride); });
}

// ---------------------------------------------------------------------------
// LaneView

LaneView::LaneView(std::shared_ptr<const sim::CompiledDesign> design, LaneEngine* group,
                   unsigned lane)
    : Engine(std::move(design), ViewTag{}), group_(group), lane_(lane) {}

void LaneView::tick() {
  throw std::logic_error("LaneView::tick: lanes advance together through LaneEngine::tick");
}

void LaneView::poke(const std::string& name, uint64_t value) {
  group_->pokeLane(sigIdOrThrow(name), lane_, value);
}

void LaneView::pokeBV(const std::string& name, const BitVec& value) {
  const int32_t sig = sigIdOrThrow(name);
  group_->laneStoreBV(sig, value, false, lane_);
  group_->syncFrozenSig(lane_, sig);
}

uint64_t LaneView::peek(const std::string& name) const {
  return group_->laneSigWord0(sigIdOrThrow(name), lane_);
}

BitVec LaneView::peekBV(const std::string& name) const {
  return group_->laneLoadBV(sigIdOrThrow(name), lane_);
}

uint64_t LaneView::peekSig(int32_t sig) const { return group_->laneSigWord0(sig, lane_); }

BitVec LaneView::peekSigBV(int32_t sig) const { return group_->laneLoadBV(sig, lane_); }

void LaneView::pokeMem(const std::string& memName, uint64_t addr, uint64_t value) {
  size_t m = memIndexOrThrow(*ir_, memName);
  if (addr >= ir_->mems[m].depth) throw std::out_of_range("mem address out of range");
  group_->pokeMemLane(m, lane_, addr, value);
}

uint64_t LaneView::peekMem(const std::string& memName, uint64_t addr) const {
  size_t m = memIndexOrThrow(*ir_, memName);
  if (addr >= ir_->mems[m].depth) throw std::out_of_range("mem address out of range");
  return group_->peekMemLane(m, lane_, addr);
}

void LaneView::resetState() {
  stats_.resetCounters();
  stopped_ = false;
  exitCode_ = 0;
  printBuf_.clear();
  group_->resetLaneState(lane_);
}

void LaneView::randomizeState(uint64_t seed) { group_->randomizeLane(lane_, seed); }

sim::Engine::Snapshot LaneView::saveState() const { return group_->saveLane(lane_); }

void LaneView::restoreState(const Snapshot& snapshot) { group_->restoreLane(lane_, snapshot); }

// ---------------------------------------------------------------------------
// LaneEngine

LaneEngine::LaneEngine(std::shared_ptr<const CompiledCcss> ccss, unsigned lanes)
    : ccss_(std::move(ccss)),
      prog_(LaneProgram::get(ccss_->design, lanes)),
      ir_(&ccss_->design->ir),
      scalarLayout_(&ccss_->design->layout),
      sched_(ccss_->body->sched),
      lanes_(lanes < 1 ? 1 : (lanes > 64 ? 64 : lanes)),
      stride_(prog_->layout.stride),
      allMask_(lanes_ >= 64 ? ~uint64_t{0} : (uint64_t{1} << lanes_) - 1),
      tier_(laneSimdTier()),
      wideFn_(laneWideKernel()) {
  vals_.assign(prog_->layout.totalWords, 0);
  memWords_.resize(ir_->mems.size());
  memRowWords_.resize(ir_->mems.size());
  for (size_t m = 0; m < ir_->mems.size(); m++) {
    const uint32_t rw = static_cast<uint32_t>(BitVec::numWords(ir_->mems[m].width));
    memRowWords_[m] = rw;
    memWords_[m].assign(ir_->mems[m].depth * rw * stride_, 0);
  }
  prevInputs_.assign(prog_->layout.totalWords, 0);
  activeMask_.assign(sched_.parts.size(), allMask_);
  // Flat old-value save area in the lane layout (packed outputs save one
  // word; schedule-dependent, so laid out here rather than in LaneProgram).
  size_t saveOff = 0;
  partOutBase_.reserve(sched_.parts.size());
  for (const auto& part : sched_.parts) {
    partOutBase_.push_back(outputSaveOff_.size());
    for (const auto& o : part.outputs) {
      outputSaveOff_.push_back(static_cast<uint32_t>(saveOff));
      saveOff += prog_->layout.isPacked(o.sig) ? 1 : scalarLayout_->nwords[o.sig] * stride_;
    }
  }
  outputSave_.assign(saveOff, 0);
  scratch_.assign(4u * stride_, 0);
  liveMask_ = allMask_;
  freshMask_ = allMask_;
  frozenVals_.resize(lanes_);
  accChecks_.assign(lanes_, 0);
  accActs_.assign(lanes_, 0);
  accOps_.assign(lanes_, 0);
  accCmps_.assign(lanes_, 0);
  accTrigs_.assign(lanes_, 0);
  views_.reserve(lanes_);
  for (unsigned l = 0; l < lanes_; l++)
    views_.emplace_back(new LaneView(ccss_->design, this, l));
  for (const auto& lop : prog_->ops)
    if (lop.kernel == LaneKernel::ConstOp)
      for (unsigned l = 0; l < lanes_; l++) evalConstLane(lop, l);
}

LaneEngine::~LaneEngine() = default;

// --- lane-word access ------------------------------------------------------

uint64_t LaneEngine::laneSigWord0(int32_t sig, unsigned l) const {
  if (!frozenVals_[l].empty())
    return frozenVals_[l][scalarLayout_->offset[static_cast<size_t>(sig)]];
  return laneWord(prog_->layout.off[static_cast<size_t>(sig)], prog_->layout.isPacked(sig), l);
}

void LaneEngine::storeLaneWord(uint32_t off, bool packed, unsigned l, uint64_t v) {
  if (packed) {
    const uint64_t bit = laneBit(l);
    vals_[off] = (vals_[off] & ~bit) | ((v & 1) << l);
  } else {
    vals_[off + l] = v;
  }
}

BitVec LaneEngine::laneLoadBV(int32_t sig, unsigned l) const {
  BitVec v(ir_->signals[static_cast<size_t>(sig)].width);
  if (!frozenVals_[l].empty()) {
    const uint32_t so = scalarLayout_->offset[static_cast<size_t>(sig)];
    for (size_t i = 0; i < v.wordCount(); i++) v.data()[i] = frozenVals_[l][so + i];
    return v;
  }
  const uint32_t off = prog_->layout.off[static_cast<size_t>(sig)];
  if (prog_->layout.isPacked(sig)) {
    v.data()[0] = (vals_[off] >> l) & 1;
  } else {
    for (size_t i = 0; i < v.wordCount(); i++) v.data()[i] = vals_[off + i * stride_ + l];
  }
  return v;
}

void LaneEngine::laneStoreBV(int32_t sig, const BitVec& v, bool signedExtend, unsigned l) {
  BitVec adj = bvops::extend(v, signedExtend, ir_->signals[static_cast<size_t>(sig)].width);
  const uint32_t off = prog_->layout.off[static_cast<size_t>(sig)];
  if (prog_->layout.isPacked(sig)) {
    storeLaneWord(off, true, l, adj.word(0));
  } else {
    for (size_t i = 0; i < adj.wordCount(); i++) vals_[off + i * stride_ + l] = adj.word(i);
  }
}

// --- op evaluation ---------------------------------------------------------

void LaneEngine::evalConstLane(const LaneExecOp& lop, unsigned l) {
  const ExecOp& op = lop.op;
  if (!op.fast) {
    laneStoreBV(op.dest, ir_->constPool[static_cast<size_t>(op.imm0)],
                ir_->signals[static_cast<size_t>(op.dest)].isSigned, l);
    return;
  }
  const uint64_t r = ir_->constPool[static_cast<size_t>(op.imm0)].word(0) & maskW(op.destW);
  storeLaneWord(lop.dOff, lop.dPacked, l, r);
}

void LaneEngine::evalSlowLane(const LaneExecOp& lop, unsigned l) {
  // Per-lane mirror of sim::evalExecOpSlow over the lane arena.
  using namespace bvops;
  const ExecOp& op = lop.op;
  auto A = [&] { return laneLoadBV(op.args[0], l); };
  auto B = [&] { return laneLoadBV(op.args[1], l); };
  auto C = [&] { return laneLoadBV(op.args[2], l); };
  const bool s = op.signedOp;
  BitVec r;
  bool signedResult = ir_->signals[static_cast<size_t>(op.dest)].isSigned;
  switch (op.code) {
    case OpCode::Add: r = add(A(), B(), s); break;
    case OpCode::Sub: r = sub(A(), B(), s); break;
    case OpCode::Mul: r = mul(A(), B(), s); break;
    case OpCode::Div: r = div(A(), B(), s); break;
    case OpCode::Rem: r = rem(A(), B(), s); break;
    case OpCode::Lt: r = lt(A(), B(), s); break;
    case OpCode::Leq: r = leq(A(), B(), s); break;
    case OpCode::Gt: r = gt(A(), B(), s); break;
    case OpCode::Geq: r = geq(A(), B(), s); break;
    case OpCode::Eq: r = eq(A(), B(), s); break;
    case OpCode::Neq: r = neq(A(), B(), s); break;
    case OpCode::Dshl: r = dshl(A(), B(), op.bW); break;
    case OpCode::Dshr: r = dshr(A(), s, B()); break;
    case OpCode::And: r = band(A(), B(), s); break;
    case OpCode::Or: r = bor(A(), B(), s); break;
    case OpCode::Xor: r = bxor(A(), B(), s); break;
    case OpCode::Cat: r = cat(A(), B()); break;
    case OpCode::Not: r = bnot(A()); break;
    case OpCode::Andr: r = andr(A()); break;
    case OpCode::Orr: r = orr(A()); break;
    case OpCode::Xorr: r = xorr(A()); break;
    case OpCode::Cvt: r = cvt(A(), s); break;
    case OpCode::Neg: r = neg(A(), s); break;
    case OpCode::Pad: r = pad(A(), s, static_cast<uint32_t>(op.imm0)); break;
    case OpCode::Shl: r = shl(A(), static_cast<uint32_t>(op.imm0)); break;
    case OpCode::Shr: r = shr(A(), s, static_cast<uint32_t>(op.imm0)); break;
    case OpCode::Bits:
      r = bits(A(), static_cast<uint32_t>(op.imm0), static_cast<uint32_t>(op.imm1));
      break;
    case OpCode::Head: r = head(A(), static_cast<uint32_t>(op.imm0)); break;
    case OpCode::Tail: r = tail(A(), static_cast<uint32_t>(op.imm0)); break;
    case OpCode::Copy:
      laneStoreBV(op.dest, A(), s, l);
      return;
    case OpCode::Mux: r = mux(A(), B(), C(), s); break;
    case OpCode::Const: r = ir_->constPool[static_cast<size_t>(op.imm0)]; break;
    case OpCode::MemRead: {
      size_t memId = static_cast<size_t>(op.imm0);
      const MemInfo& m = ir_->mems[memId];
      uint64_t addr = A().toU64();
      bool en = !B().isZero();
      BitVec row(m.width);
      if (en && addr < m.depth && A().bitLength() <= 64) {
        uint32_t rw = memRowWords_[memId];
        for (uint32_t i = 0; i < rw; i++)
          row.data()[i] = memWords_[memId][(addr * rw + i) * stride_ + l];
        row.maskToWidth();
      }
      r = row;
      break;
    }
  }
  laneStoreBV(op.dest, r, signedResult, l);
}

void LaneEngine::evalOp(const LaneExecOp& lop) {
  const ExecOp& op = lop.op;
  switch (lop.kernel) {
    case LaneKernel::Packed1: {
      // One bitwise word op covers every lane's bit.
      const uint64_t a = lop.aOff != UINT32_MAX ? vals_[lop.aOff] : 0;
      const uint64_t b = lop.bOff != UINT32_MAX ? vals_[lop.bOff] : 0;
      uint64_t r;
      switch (op.code) {
        case OpCode::And: r = a & b; break;
        case OpCode::Or: r = a | b; break;
        case OpCode::Xor: r = a ^ b; break;
        case OpCode::Not: r = ~a; break;
        case OpCode::Eq: r = ~(a ^ b); break;
        case OpCode::Neq: r = a ^ b; break;
        case OpCode::Mux: r = (a & b) | (~a & vals_[lop.cOff]); break;
        default: r = a; break;  // Copy/Pad/Tail
      }
      vals_[lop.dOff] = r & allMask_;  // keep padding-lane bits zero
      break;
    }
    case LaneKernel::WideFast: {
      static const uint64_t kZeros[64] = {};
      uint64_t* d = &vals_[lop.dOff];
      const uint64_t* a = lop.aOff != UINT32_MAX ? &vals_[lop.aOff] : kZeros;
      const uint64_t* b = lop.bOff != UINT32_MAX ? &vals_[lop.bOff] : kZeros;
      const uint64_t* c = lop.cOff != UINT32_MAX ? &vals_[lop.cOff] : kZeros;
      if (wideFn_ != nullptr && wideFn_(op, d, a, b, c, stride_)) break;
      laneEvalWidePortable(op, d, a, b, c, stride_);
      break;
    }
    case LaneKernel::GenericFast: {
      // Mixed packed/unpacked operands. Only width<=1 signals are packed,
      // so a packed operand expands exactly to 0/1 words: stage those into
      // scratch rows and run the same wide kernel as WideFast once for all
      // lanes, compressing a packed dest back to its bit slice afterwards.
      static const uint64_t kZeros[64] = {};
      auto stage = [&](uint32_t off, bool packed, uint64_t* scratch) -> const uint64_t* {
        if (off == UINT32_MAX) return kZeros;
        if (!packed) return &vals_[off];
        const uint64_t w = vals_[off];
        for (unsigned l = 0; l < stride_; l++) scratch[l] = (w >> l) & 1;
        return scratch;
      };
      uint64_t* s = scratch_.data();
      const uint64_t* a = stage(lop.aOff, lop.aPacked, s);
      const uint64_t* b = stage(lop.bOff, lop.bPacked, s + stride_);
      const uint64_t* c = stage(lop.cOff, lop.cPacked, s + 2 * stride_);
      uint64_t* d = lop.dPacked ? s + 3 * stride_ : &vals_[lop.dOff];
      if (!(wideFn_ != nullptr && wideFn_(op, d, a, b, c, stride_)))
        laneEvalWidePortable(op, d, a, b, c, stride_);
      if (lop.dPacked) {
        uint64_t bits = 0;
        for (unsigned l = 0; l < stride_; l++) bits |= (d[l] & 1) << l;
        vals_[lop.dOff] = bits;
      }
      break;
    }
    case LaneKernel::SlowBV:
      for (unsigned l = 0; l < lanes_; l++) evalSlowLane(lop, l);
      break;
    case LaneKernel::MemReadOp: {
      const MemInfo& m = ir_->mems[static_cast<size_t>(op.imm0)];
      const auto& words = memWords_[static_cast<size_t>(op.imm0)];
      const uint64_t dm = maskW(op.destW);
      for (unsigned l = 0; l < lanes_; l++) {
        const uint64_t addr = laneWord(lop.aOff, lop.aPacked, l);
        const uint64_t en = laneWord(lop.bOff, lop.bPacked, l);
        const uint64_t r = (en != 0 && addr < m.depth) ? words[addr * stride_ + l] : 0;
        storeLaneWord(lop.dOff, lop.dPacked, l, r & dm);
      }
      break;
    }
    case LaneKernel::ConstOp:
      for (unsigned l = 0; l < lanes_; l++) evalConstLane(lop, l);
      break;
  }
}

bool LaneEngine::evalOpChangedAny(const LaneExecOp& lop) {
  const uint32_t off = lop.dOff;
  const uint32_t nw =
      lop.dPacked ? 1 : scalarLayout_->nwords[lop.op.dest] * stride_;
  uint64_t saved[8];
  std::vector<uint64_t> savedWide;
  const uint64_t* old;
  if (nw <= 8) {
    for (uint32_t i = 0; i < nw; i++) saved[i] = vals_[off + i];
    old = saved;
  } else {
    savedWide.assign(vals_.begin() + off, vals_.begin() + off + nw);
    old = savedWide.data();
  }
  evalOp(lop);
  for (uint32_t i = 0; i < nw; i++)
    if (vals_[off + i] != old[i]) return true;
  return false;
}

void LaneEngine::evalSuperRangeLanes(const LaneExecOp* ops, size_t count) {
  // Joint fixpoint over all lanes: iterate until no lane's value moves.
  for (int iter = 0; iter < sim::kMaxSuperIters; iter++) {
    bool changed = false;
    for (size_t i = 0; i < count; i++) changed |= evalOpChangedAny(ops[i]);
    if (!changed) return;
  }
  throw std::runtime_error(
      "combinational loop failed to converge (oscillating feedback?) in supernode");
}

// --- activity machinery ----------------------------------------------------

void LaneEngine::wakeMask(const std::vector<int32_t>& parts, uint64_t m) {
  for (int32_t p : parts) activeMask_[static_cast<size_t>(p)] |= m;
  addMasked(accTrigs_, m, parts.size());
}

void LaneEngine::applyRegWrite(const SchedRegWrite& rw, uint64_t m) {
  if (m == 0) return;
  const RegInfo& r = ir_->regs[static_cast<size_t>(rw.regIdx)];
  const uint32_t oS = prog_->layout.off[static_cast<size_t>(r.sig)];
  const uint32_t oN = prog_->layout.off[static_cast<size_t>(r.next)];
  uint64_t changed = 0;
  addMasked(accCmps_, m, 1);  // one compare per masked lane, either layout
  if (prog_->layout.isPacked(r.sig)) {
    // sig and next share a width, so both are bit-sliced: one XOR yields
    // the per-lane change mask and the masked commit at once.
    const uint64_t diff = (vals_[oS] ^ vals_[oN]) & m;
    vals_[oS] ^= diff;
    changed = diff;
  } else {
    const uint32_t nw = scalarLayout_->nwords[static_cast<size_t>(r.sig)];
    for (uint64_t t = m; t != 0; t &= t - 1) {
      const unsigned l = lowestLane(t);
      bool laneChanged = false;
      for (uint32_t i = 0; i < nw; i++)
        if (vals_[oS + i * stride_ + l] != vals_[oN + i * stride_ + l]) {
          laneChanged = true;
          break;
        }
      if (!laneChanged) continue;
      for (uint32_t i = 0; i < nw; i++) vals_[oS + i * stride_ + l] = vals_[oN + i * stride_ + l];
      changed |= laneBit(l);
    }
  }
  if (changed != 0) wakeMask(rw.wakeParts, changed);
}

void LaneEngine::applyMemWrite(const SchedMemWrite& mw, uint64_t m) {
  if (m == 0) return;
  const MemInfo& mem = ir_->mems[static_cast<size_t>(mw.memIdx)];
  const sim::MemWriter& w = mem.writers[static_cast<size_t>(mw.writerIdx)];
  const uint32_t rw = memRowWords_[static_cast<size_t>(mw.memIdx)];
  auto& words = memWords_[static_cast<size_t>(mw.memIdx)];
  const uint32_t oD = prog_->layout.off[static_cast<size_t>(w.data)];
  const bool dPacked = prog_->layout.isPacked(w.data);
  uint64_t changed = 0;
  for (uint64_t t = m; t != 0; t &= t - 1) {
    const unsigned l = lowestLane(t);
    // Same early-out order as the scalar engine (comparisons only counted
    // for writes that pass the enable/mask/bounds guards).
    if (laneSigWord0(w.en, l) == 0) continue;
    if (laneSigWord0(w.mask, l) == 0) continue;
    const uint64_t addr = laneSigWord0(w.addr, l);
    if (addr >= mem.depth) continue;
    accCmps_[l]++;
    bool laneChanged = false;
    for (uint32_t i = 0; i < rw; i++) {
      const uint64_t dv = dPacked ? (vals_[oD] >> l) & 1 : vals_[oD + i * stride_ + l];
      uint64_t& mv = words[(addr * rw + i) * stride_ + l];
      if (mv != dv) {
        mv = dv;
        laneChanged = true;
      }
    }
    if (laneChanged) changed |= laneBit(l);
  }
  if (changed != 0) wakeMask(mw.wakeParts, changed);
}

uint64_t LaneEngine::outputDiffMask(int32_t sig, uint32_t saveOff) const {
  const uint32_t off = prog_->layout.off[static_cast<size_t>(sig)];
  if (prog_->layout.isPacked(sig))
    return (outputSave_[saveOff] ^ vals_[off]) & allMask_;
  const uint32_t nw = scalarLayout_->nwords[static_cast<size_t>(sig)];
  uint64_t mask = 0;
  for (unsigned l = 0; l < lanes_; l++) {
    uint64_t d = 0;
    for (uint32_t i = 0; i < nw; i++)
      d |= outputSave_[saveOff + i * stride_ + l] ^ vals_[off + i * stride_ + l];
    if (d != 0) mask |= laneBit(l);
  }
  return mask;
}

void LaneEngine::runPartition(size_t pos, const CondPart& part, uint64_t m) {
  obs::TraceSpan span("lane.part", obs::TraceCat::None, obs::TraceDetail::Partition,
                      "part", pos);
  groupPartitionRuns_++;
  // Live lanes riding along inactive: the masked-activity composition at
  // work (they recompute unchanged values but commit nothing).
  maskedLaneSkips_ += laneCount(liveMask_ & ~m);
  addMasked(accActs_, m, 1);
  addMasked(accOps_, m, part.ops.size());

  // Save old output values (all lanes — diffs are masked later).
  const size_t outBase = partOutBase_[pos];
  for (size_t oi = 0; oi < part.outputs.size(); oi++) {
    const PartOutput& o = part.outputs[oi];
    const uint32_t so = outputSaveOff_[outBase + oi];
    const uint32_t vo = prog_->layout.off[static_cast<size_t>(o.sig)];
    const uint32_t nw =
        prog_->layout.isPacked(o.sig) ? 1 : scalarLayout_->nwords[o.sig] * stride_;
    for (uint32_t i = 0; i < nw; i++) outputSave_[so + i] = vals_[vo + i];
  }

  // Evaluate each op once for ALL lanes. Inactive lanes recompute their
  // current values from unchanged inputs — combinational evaluation is
  // pure, so this is free of observable effect; only commits and counters
  // honor the mask.
  if (!ir_->hasCombLoops()) {
    for (int32_t opIdx : part.ops) evalOp(prog_->ops[static_cast<size_t>(opIdx)]);
  } else {
    for (size_t k = 0; k < part.ops.size();) {
      int32_t opIdx = part.ops[k];
      int32_t super = ir_->superOf(static_cast<size_t>(opIdx));
      if (super < 0) {
        evalOp(prog_->ops[static_cast<size_t>(opIdx)]);
        k++;
        continue;
      }
      size_t j = k;
      while (j < part.ops.size() && ir_->superOf(static_cast<size_t>(part.ops[j])) == super)
        j++;
      evalSuperRangeLanes(prog_->ops.data() + opIdx, j - k);
      k = j;
    }
  }

  // Elided state updates, masked to the active lanes.
  for (const auto& rw : part.regWrites) applyRegWrite(rw, m);
  for (const auto& mw : part.memWrites) applyMemWrite(mw, m);

  // Push-direction triggering with per-lane change masks.
  addMasked(accCmps_, m, part.outputs.size());
  for (size_t oi = 0; oi < part.outputs.size(); oi++) {
    const PartOutput& o = part.outputs[oi];
    const uint64_t diff = outputDiffMask(o.sig, outputSaveOff_[outBase + oi]) & m;
    if (diff != 0) wakeMask(o.consumers, diff);
  }
}

void LaneEngine::sweepInputs() {
  // 1. External input change detection, per lane (fresh lanes skip the
  //    diff — their partitions are all pending anyway).
  const uint64_t cmp = liveMask_ & ~freshMask_;
  for (size_t i = 0; i < ir_->inputs.size(); i++) {
    const int32_t in = ir_->inputs[i];
    const uint32_t off = prog_->layout.off[static_cast<size_t>(in)];
    const bool packed = prog_->layout.isPacked(in);
    if (cmp != 0) {
      uint64_t diff = 0;
      if (packed) {
        diff = (vals_[off] ^ prevInputs_[off]) & cmp;
      } else {
        const uint32_t nw = scalarLayout_->nwords[static_cast<size_t>(in)];
        for (uint64_t t = cmp; t != 0; t &= t - 1) {
          const unsigned l = lowestLane(t);
          for (uint32_t wd = 0; wd < nw; wd++)
            if (vals_[off + wd * stride_ + l] != prevInputs_[off + wd * stride_ + l]) {
              diff |= laneBit(l);
              break;
            }
        }
      }
      if (diff != 0) wakeMask(sched_.inputConsumers[i], diff);
    }
    const uint32_t nw =
        packed ? 1 : scalarLayout_->nwords[static_cast<size_t>(in)] * stride_;
    for (uint32_t wd = 0; wd < nw; wd++) prevInputs_[off + wd] = vals_[off + wd];
  }
  freshMask_ = 0;
}

std::string LaneEngine::laneFormatPrintf(const sim::PrintInfo& p, unsigned l) const {
  // Per-lane mirror of sim::formatPrintf over the lane arena.
  std::string out;
  size_t argIdx = 0;
  for (size_t i = 0; i < p.format.size(); i++) {
    char ch = p.format[i];
    if (ch != '%' || i + 1 >= p.format.size()) {
      out += ch;
      continue;
    }
    char f = p.format[++i];
    if (f == '%') {
      out += '%';
      continue;
    }
    if (argIdx >= p.args.size()) {
      out += '%';
      out += f;
      continue;
    }
    int32_t sig = p.args[argIdx++];
    BitVec v = laneLoadBV(sig, l);
    bool sgn = ir_->signals[static_cast<size_t>(sig)].isSigned;
    switch (f) {
      case 'd':
        out += sgn ? v.toSignedDecString() : v.toDecString();
        break;
      case 'x':
        out += v.toHexString();
        break;
      case 'b':
        out += v.toBinString();
        break;
      case 'c':
        out += static_cast<char>(v.toU64() & 0xff);
        break;
      default:
        out += '%';
        out += f;
        break;
    }
  }
  return out;
}

void LaneEngine::finishCycle() {
  // 3. Side effects from stale-but-correct enables, per live lane.
  for (const auto& p : ir_->prints)
    for (uint64_t t = liveMask_; t != 0; t &= t - 1) {
      const unsigned l = lowestLane(t);
      if (laneSigWord0(p.en, l) != 0) views_[l]->printBuf_ += laneFormatPrintf(p, l);
    }
  for (const auto& s : ir_->stops)
    for (uint64_t t = liveMask_; t != 0; t &= t - 1) {
      const unsigned l = lowestLane(t);
      if (laneSigWord0(s.en, l) != 0 && !views_[l]->stopped_) {
        views_[l]->stopped_ = true;
        views_[l]->exitCode_ = s.exitCode;
      }
    }
  for (const auto& a : ir_->asserts)
    for (uint64_t t = liveMask_; t != 0; t &= t - 1) {
      const unsigned l = lowestLane(t);
      if (laneSigWord0(a.en, l) != 0 && laneSigWord0(a.pred, l) == 0 &&
          !views_[l]->stopped_) {
        views_[l]->printBuf_ += "assertion failed: " + a.message + "\n";
        views_[l]->stopped_ = true;
        views_[l]->exitCode_ = 65;
      }
    }

  // 4. Phase 2: non-elided state elements, masked to live lanes.
  for (const auto& rw : sched_.deferredRegs) applyRegWrite(rw, liveMask_);
  for (const auto& mw : sched_.deferredMemWrites) applyMemWrite(mw, liveMask_);

  // Cycle accounting, then retire lanes that stopped THIS tick — the
  // stopping cycle completes in full (matching a solo run's final tick),
  // after which the lane's state freezes.
  uint64_t stoppedNow = 0;
  for (uint64_t t = liveMask_; t != 0; t &= t - 1) {
    const unsigned l = lowestLane(t);
    views_[l]->stats_.cycles++;
    if (views_[l]->stopped_) stoppedNow |= laneBit(l);
  }
  for (uint64_t t = stoppedNow; t != 0; t &= t - 1) freezeLane(lowestLane(t));
  liveMask_ &= ~stoppedNow;
}

void LaneEngine::tick() {
  obs::TraceSpan span("lane.tick", obs::trace_detail::inPooledWork()
                                       ? obs::TraceCat::None
                                       : obs::TraceCat::Busy,
                      obs::TraceDetail::Wave, "cycle", groupTicks_);
  sweepInputs();

  // 2. Partition sweep: a partition executes when ANY live lane has a
  //    pending wake; the union mask rides through the run so commits and
  //    counters stay per-lane exact.
  const size_t nparts = sched_.parts.size();
  addMasked(accChecks_, liveMask_, nparts);
  for (size_t pos = 0; pos < nparts; pos++) {
    const uint64_t m = activeMask_[pos] & liveMask_;
    activeMask_[pos] &= ~m;  // deactivate consumed lanes first (Figure 1)
    if (m == 0) {
      groupPartitionSkips_++;
      continue;
    }
    runPartition(pos, sched_.parts[pos], m);
  }

  finishCycle();
  flushLaneStats();
  groupTicks_++;
}

void LaneEngine::flushLaneStats() {
  for (unsigned l = 0; l < lanes_; l++) {
    sim::EngineStats& st = views_[l]->stats_;
    st.partitionChecks += accChecks_[l];
    st.partitionActivations += accActs_[l];
    st.opsEvaluated += accOps_[l];
    st.outputComparisons += accCmps_[l];
    st.triggerSets += accTrigs_[l];
    accChecks_[l] = accActs_[l] = accOps_[l] = accCmps_[l] = accTrigs_[l] = 0;
  }
}

double LaneEngine::laneEffectiveActivity(unsigned l) const {
  const sim::EngineStats& st = views_.at(l)->stats_;
  const uint64_t total = static_cast<uint64_t>(ir_->ops.size()) * st.cycles;
  return total == 0 ? 0.0 : static_cast<double>(st.opsEvaluated) / static_cast<double>(total);
}

// --- per-lane lifecycle ----------------------------------------------------

void LaneEngine::pokeLane(int32_t sig, unsigned l, uint64_t value) {
  const uint32_t w = ir_->signals[static_cast<size_t>(sig)].width;
  const uint32_t off = prog_->layout.off[static_cast<size_t>(sig)];
  if (prog_->layout.isPacked(sig)) {
    storeLaneWord(off, true, l, value & maskW(w));
    syncFrozenSig(l, sig);
    return;
  }
  vals_[off + l] = value & maskW(w);
  for (uint32_t i = 1; i < scalarLayout_->nwords[static_cast<size_t>(sig)]; i++)
    vals_[off + i * stride_ + l] = 0;
  syncFrozenSig(l, sig);
}

void LaneEngine::pokeMemLane(size_t mem, unsigned l, uint64_t addr, uint64_t value) {
  const uint32_t rw = memRowWords_[mem];
  memWords_[mem][(addr * rw) * stride_ + l] =
      value & maskW(std::min(ir_->mems[mem].width, 64u));
  for (uint32_t i = 1; i < rw; i++) memWords_[mem][(addr * rw + i) * stride_ + l] = 0;
}

uint64_t LaneEngine::peekMemLane(size_t mem, unsigned l, uint64_t addr) const {
  return memWords_[mem][(addr * memRowWords_[mem]) * stride_ + l];
}

void LaneEngine::rearmLane(unsigned l) {
  const uint64_t bit = laneBit(l);
  for (auto& m : activeMask_) m |= bit;
  freshMask_ |= bit;
}

void LaneEngine::freezeLane(unsigned l) {
  if (!frozenVals_[l].empty()) return;
  std::vector<uint64_t>& f = frozenVals_[l];
  f.assign(scalarLayout_->totalWords, 0);
  for (size_t sig = 0; sig < ir_->signals.size(); sig++) {
    const uint32_t so = scalarLayout_->offset[sig];
    const uint32_t lo = prog_->layout.off[sig];
    if (prog_->layout.packed[sig] != 0) {
      f[so] = (vals_[lo] >> l) & 1;
    } else {
      for (uint32_t i = 0; i < scalarLayout_->nwords[sig]; i++)
        f[so + i] = vals_[lo + i * stride_ + l];
    }
  }
}

void LaneEngine::syncFrozenSig(unsigned l, int32_t sig) {
  if (frozenVals_[l].empty()) return;
  const size_t s = static_cast<size_t>(sig);
  const uint32_t so = scalarLayout_->offset[s];
  const uint32_t lo = prog_->layout.off[s];
  if (prog_->layout.packed[s] != 0) {
    frozenVals_[l][so] = (vals_[lo] >> l) & 1;
  } else {
    for (uint32_t i = 0; i < scalarLayout_->nwords[s]; i++)
      frozenVals_[l][so + i] = vals_[lo + i * stride_ + l];
  }
}

void LaneEngine::retireLane(unsigned l) {
  if (!laneLive(l)) return;
  freezeLane(l);
  liveMask_ &= ~laneBit(l);
}

void LaneEngine::randomizeLane(unsigned l, uint64_t seed) {
  // Replays the scalar randomizeState (seed, slot) sequence into this
  // lane's slice, so a lane randomization matches any scalar engine's.
  uint64_t slot = 0;
  for (const RegInfo& r : ir_->regs) {
    const uint32_t w = ir_->signals[static_cast<size_t>(r.sig)].width;
    const uint32_t nw = scalarLayout_->nwords[static_cast<size_t>(r.sig)];
    const uint32_t off = prog_->layout.off[static_cast<size_t>(r.sig)];
    if (prog_->layout.isPacked(r.sig)) {
      uint64_t v = sim::stateRandomDraw(seed, slot++);  // nw == 1 for width <= 1
      if (w % 64 != 0) v &= BitVec::topWordMask(w);
      if (w == 0) v = 0;
      storeLaneWord(off, true, l, v);
    } else {
      for (uint32_t i = 0; i < nw; i++)
        vals_[off + i * stride_ + l] = sim::stateRandomDraw(seed, slot++);
      if (w % 64 != 0) vals_[off + (nw - 1) * stride_ + l] &= BitVec::topWordMask(w);
      if (w == 0) vals_[off + l] = 0;
    }
  }
  for (size_t m = 0; m < ir_->mems.size(); m++) {
    const uint32_t w = ir_->mems[m].width;
    const uint32_t rw = memRowWords_[m];
    for (uint64_t row = 0; row < ir_->mems[m].depth; row++) {
      for (uint32_t i = 0; i < rw; i++)
        memWords_[m][(row * rw + i) * stride_ + l] = sim::stateRandomDraw(seed, slot++);
      if (w % 64 != 0)
        memWords_[m][(row * rw + rw - 1) * stride_ + l] &= BitVec::topWordMask(w);
    }
  }
  rearmLane(l);
}

sim::Engine::Snapshot LaneEngine::saveLane(unsigned l) const {
  // Gathered into the SCALAR layout: snapshots are interchangeable with
  // every other engine kind over the same design.
  sim::Engine::Snapshot s;
  if (!frozenVals_[l].empty()) {
    s.vals = frozenVals_[l];
  } else {
    s.vals.assign(scalarLayout_->totalWords, 0);
    for (size_t sig = 0; sig < ir_->signals.size(); sig++) {
      const uint32_t so = scalarLayout_->offset[sig];
      const uint32_t lo = prog_->layout.off[sig];
      if (prog_->layout.packed[sig] != 0) {
        s.vals[so] = (vals_[lo] >> l) & 1;
      } else {
        for (uint32_t i = 0; i < scalarLayout_->nwords[sig]; i++)
          s.vals[so + i] = vals_[lo + i * stride_ + l];
      }
    }
  }
  s.memWords.resize(ir_->mems.size());
  for (size_t m = 0; m < ir_->mems.size(); m++) {
    s.memWords[m].resize(memWords_[m].size() / stride_);
    for (size_t wI = 0; wI < s.memWords[m].size(); wI++)
      s.memWords[m][wI] = memWords_[m][wI * stride_ + l];
  }
  s.stopped = views_[l]->stopped_;
  s.exitCode = views_[l]->exitCode_;
  return s;
}

void LaneEngine::restoreLane(unsigned l, const sim::Engine::Snapshot& snapshot) {
  if (snapshot.vals.size() != scalarLayout_->totalWords ||
      snapshot.memWords.size() != ir_->mems.size())
    throw std::invalid_argument("snapshot does not match this engine's design");
  for (size_t sig = 0; sig < ir_->signals.size(); sig++) {
    const uint32_t so = scalarLayout_->offset[sig];
    const uint32_t lo = prog_->layout.off[sig];
    if (prog_->layout.packed[sig] != 0) {
      storeLaneWord(lo, true, l, snapshot.vals[so]);
    } else {
      for (uint32_t i = 0; i < scalarLayout_->nwords[sig]; i++)
        vals_[lo + i * stride_ + l] = snapshot.vals[so + i];
    }
  }
  for (size_t m = 0; m < ir_->mems.size(); m++)
    for (size_t wI = 0; wI < snapshot.memWords[m].size(); wI++)
      memWords_[m][wI * stride_ + l] = snapshot.memWords[m][wI];
  views_[l]->stopped_ = snapshot.stopped;
  views_[l]->exitCode_ = snapshot.exitCode;
  rearmLane(l);
  frozenVals_[l].clear();
  if (snapshot.stopped) {
    freezeLane(l);
    liveMask_ &= ~laneBit(l);
  } else {
    liveMask_ |= laneBit(l);
  }
}

void LaneEngine::resetLaneState(unsigned l) {
  for (size_t sig = 0; sig < ir_->signals.size(); sig++) {
    const uint32_t lo = prog_->layout.off[sig];
    if (prog_->layout.packed[sig] != 0) {
      vals_[lo] &= ~laneBit(l);
    } else {
      for (uint32_t i = 0; i < scalarLayout_->nwords[sig]; i++)
        vals_[lo + i * stride_ + l] = 0;
    }
  }
  for (size_t m = 0; m < ir_->mems.size(); m++)
    for (size_t wI = 0; wI < memWords_[m].size() / stride_; wI++)
      memWords_[m][wI * stride_ + l] = 0;
  for (const auto& lop : prog_->ops)
    if (lop.kernel == LaneKernel::ConstOp) evalConstLane(lop, l);
  rearmLane(l);
  frozenVals_[l].clear();
  liveMask_ |= laneBit(l);
}

// ---------------------------------------------------------------------------
// LaneBroadcastEngine

LaneBroadcastEngine::LaneBroadcastEngine(std::shared_ptr<const CompiledCcss> ccss,
                                         unsigned lanes)
    : Engine(ccss->design, ViewTag{}), group_(std::move(ccss), lanes) {}

void LaneBroadcastEngine::syncFromLane0() {
  sim::Engine& l0 = group_.lane(0);
  stats_ = l0.stats();
  stopped_ = l0.stopped();
  exitCode_ = l0.exitCode();
  if (printBuf_.size() != l0.printOutput().size()) printBuf_ = l0.printOutput();
}

void LaneBroadcastEngine::tick() {
  group_.tick();
  syncFromLane0();
}

void LaneBroadcastEngine::poke(const std::string& name, uint64_t value) {
  for (unsigned l = 0; l < group_.lanes(); l++) group_.lane(l).poke(name, value);
}

void LaneBroadcastEngine::pokeBV(const std::string& name, const BitVec& value) {
  for (unsigned l = 0; l < group_.lanes(); l++) group_.lane(l).pokeBV(name, value);
}

uint64_t LaneBroadcastEngine::peek(const std::string& name) const {
  return group_.lane(0).peek(name);
}

BitVec LaneBroadcastEngine::peekBV(const std::string& name) const {
  return group_.lane(0).peekBV(name);
}

uint64_t LaneBroadcastEngine::peekSig(int32_t sig) const { return group_.lane(0).peekSig(sig); }

BitVec LaneBroadcastEngine::peekSigBV(int32_t sig) const {
  return group_.lane(0).peekSigBV(sig);
}

void LaneBroadcastEngine::pokeMem(const std::string& memName, uint64_t addr, uint64_t value) {
  for (unsigned l = 0; l < group_.lanes(); l++) group_.lane(l).pokeMem(memName, addr, value);
}

uint64_t LaneBroadcastEngine::peekMem(const std::string& memName, uint64_t addr) const {
  return group_.lane(0).peekMem(memName, addr);
}

void LaneBroadcastEngine::resetState() {
  for (unsigned l = 0; l < group_.lanes(); l++) group_.lane(l).resetState();
  stats_.resetCounters();
  stopped_ = false;
  exitCode_ = 0;
  printBuf_.clear();
}

void LaneBroadcastEngine::randomizeState(uint64_t seed) {
  for (unsigned l = 0; l < group_.lanes(); l++) group_.lane(l).randomizeState(seed);
  syncFromLane0();
}

sim::Engine::Snapshot LaneBroadcastEngine::saveState() const {
  return group_.lane(0).saveState();
}

void LaneBroadcastEngine::restoreState(const Snapshot& snapshot) {
  for (unsigned l = 0; l < group_.lanes(); l++) group_.lane(l).restoreState(snapshot);
  syncFromLane0();
}

}  // namespace essent::core
