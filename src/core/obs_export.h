// JSON export of the simulator's observability data: design summaries,
// partitioner statistics, engine work counters, and ActivityEngine runtime
// profiles. The hot-path structs (sim::EngineStats, core::ActivityProfile)
// stay plain-old-data; this is the one place that knows how they map onto
// the machine-readable report schema (documented in docs/OBSERVABILITY.md).
#pragma once

#include <cstddef>
#include <vector>

#include "core/activity_engine.h"
#include "core/partitioner.h"
#include "core/placement.h"
#include "core/schedule.h"
#include "core/sim_farm.h"
#include "obs/json.h"
#include "sim/sim_ir.h"

namespace essent::core {

// Static design shape: op/register/memory/port counts.
obs::Json designSummaryJson(const sim::SimIR& ir);

// Compile-time partitioner statistics (essentc --stats as JSON).
obs::Json partitionStatsJson(const PartitionStats& stats);

// Schedule summary: partition count, elision counts, output count, plus a
// partition-size histogram.
obs::Json scheduleSummaryJson(const CondPartSchedule& sched);

// Static BSP placement shape (the `placement` section of --stats-json and
// the per-row placement column of bench_parallel_scaling): thread width,
// super-step count vs the levelization depth it coarsened, cut-edge
// fraction, and per-thread load balance.
obs::Json placementReportJson(const BspPlacement& placement);

// Runtime work counters, keyed by Figure 7's decomposition: base work
// (ops_evaluated), static overhead (partition_checks), dynamic overhead
// (output_comparisons, trigger_sets).
obs::Json engineStatsJson(const sim::EngineStats& stats);

// Full runtime profile of one ActivityEngine run: engine stats, effective
// activity, per-partition counters (with op counts from the schedule), and
// the cycle-window activation timeline. Requires profiling to have been
// enabled on the engine.
obs::Json activityProfileJson(const ActivityEngine& engine);

// Partition indices ordered hottest-first by profiled ops evaluated
// (ties: more activations first, then lower index), truncated to n.
std::vector<size_t> topHotPartitions(const ActivityProfile& prof, size_t n);

// Aggregate + per-instance report of one SimFarm batch (the `farm` section
// of essentc --batch --stats-json; fields in docs/OBSERVABILITY.md).
obs::Json farmReportJson(const FarmReport& report);

}  // namespace essent::core
