#include "core/lane_simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "sim/op_eval.h"

namespace essent::core {

using sim::ExecOp;
using sim::maskW;
using sim::OpCode;
using sim::sx;

// Defined in the flag-gated TUs (lane_simd_avx2.cpp / lane_simd_avx512.cpp).
#if ESSENT_HAVE_AVX2
bool laneWideAvx2(const ExecOp& op, uint64_t* d, const uint64_t* a, const uint64_t* b,
                  const uint64_t* c, uint32_t n);
#endif
#if ESSENT_HAVE_AVX512
bool laneWideAvx512(const ExecOp& op, uint64_t* d, const uint64_t* a, const uint64_t* b,
                    const uint64_t* c, uint32_t n);
#endif

namespace {

// -1 = auto (env + CPU); otherwise a forced LaneSimdTier value.
std::atomic<int> g_forcedTier{-1};

LaneSimdTier bestAvailable(LaneSimdTier cap) {
#if ESSENT_HAVE_AVX512
  if (cap >= LaneSimdTier::Avx512 && __builtin_cpu_supports("avx512f"))
    return LaneSimdTier::Avx512;
#endif
#if ESSENT_HAVE_AVX2
  if (cap >= LaneSimdTier::Avx2 && __builtin_cpu_supports("avx2")) return LaneSimdTier::Avx2;
#endif
  (void)cap;
  return LaneSimdTier::Portable;
}

LaneSimdTier envCap() {
  const char* env = std::getenv("ESSENT_SIMD");
  if (env == nullptr) return LaneSimdTier::Avx512;  // no cap
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "portable") == 0)
    return LaneSimdTier::Portable;
  if (std::strcmp(env, "avx2") == 0) return LaneSimdTier::Avx2;
  if (std::strcmp(env, "avx512") == 0) return LaneSimdTier::Avx512;
  return LaneSimdTier::Avx512;  // unrecognized value: auto-detect
}

}  // namespace

LaneSimdTier laneSimdTier() {
  int forced = g_forcedTier.load(std::memory_order_relaxed);
  if (forced >= 0) return bestAvailable(static_cast<LaneSimdTier>(forced));
  return bestAvailable(envCap());
}

const char* laneSimdTierName(LaneSimdTier tier) {
  switch (tier) {
    case LaneSimdTier::Avx512: return "avx512";
    case LaneSimdTier::Avx2: return "avx2";
    case LaneSimdTier::Portable: break;
  }
  return "portable";
}

const char* laneSimdBackendName() { return laneSimdTierName(laneSimdTier()); }

LaneWideFn laneWideKernel() {
  switch (laneSimdTier()) {
#if ESSENT_HAVE_AVX512
    case LaneSimdTier::Avx512: return &laneWideAvx512;
#endif
#if ESSENT_HAVE_AVX2
    case LaneSimdTier::Avx2: return &laneWideAvx2;
#endif
    default: return nullptr;
  }
}

void laneSimdForceTier(LaneSimdTier tier) {
  g_forcedTier.store(static_cast<int>(tier), std::memory_order_relaxed);
}

void laneSimdResetTier() { g_forcedTier.store(-1, std::memory_order_relaxed); }

// ---------------------------------------------------------------------------
// Portable wide loops.
//
// One op-code dispatch, then a tight per-lane loop over the SoA slots; the
// loop bodies mirror sim::evalFastScalar case by case (same shift guards,
// same sign extension) so every tier — and the scalar engines — agree
// bit-for-bit. The bitwise/arith/compare loops are written without
// per-iteration branches so -O3 auto-vectorizes them.

namespace {

// Binary/unary loop: every lane computes EXPR over av/bv and stores the
// destW-masked result.
#define LANE_LOOP(EXPR)                             \
  do {                                              \
    for (uint32_t l = 0; l < n; l++) {              \
      const uint64_t av = a[l];                     \
      const uint64_t bv = b[l];                     \
      (void)av;                                     \
      (void)bv;                                     \
      d[l] = static_cast<uint64_t>(EXPR) & dm;      \
    }                                               \
  } while (0)

}  // namespace

void laneEvalWidePortable(const ExecOp& op, uint64_t* d, const uint64_t* a, const uint64_t* b,
                          const uint64_t* c, uint32_t n) {
  const uint64_t dm = maskW(op.destW);
  const uint32_t aW = op.aW, bW = op.bW;
  switch (op.code) {
    case OpCode::Add:
      if (op.signedOp) LANE_LOOP(sx(av, aW) + sx(bv, bW));
      else LANE_LOOP(av + bv);
      break;
    case OpCode::Sub:
      if (op.signedOp) LANE_LOOP(sx(av, aW) - sx(bv, bW));
      else LANE_LOOP(av - bv);
      break;
    case OpCode::Mul:
      if (op.signedOp)
        LANE_LOOP(static_cast<uint64_t>(sx(av, aW)) * static_cast<uint64_t>(sx(bv, bW)));
      else LANE_LOOP(av * bv);
      break;
    case OpCode::Div:
      // Division has per-lane guards (b==0) — no branch-free form; mirror
      // the scalar semantics lane by lane.
      for (uint32_t l = 0; l < n; l++) {
        const uint64_t av = a[l], bv = b[l];
        uint64_t r;
        if (bv == 0) r = 0;
        else if (op.signedOp) r = static_cast<uint64_t>(sx(av, aW) / sx(bv, bW));
        else r = av / bv;
        d[l] = r & dm;
      }
      break;
    case OpCode::Rem:
      for (uint32_t l = 0; l < n; l++) {
        const uint64_t av = a[l], bv = b[l];
        uint64_t r;
        if (bv == 0) r = av;  // x % 0 := x truncated (matches bvops::rem)
        else if (op.signedOp) {
          const int64_t sb = sx(bv, bW);
          r = sb == -1 ? 0 : static_cast<uint64_t>(sx(av, aW) % sb);
        } else r = av % bv;
        d[l] = r & dm;
      }
      break;
    case OpCode::Lt:
      if (op.signedOp) LANE_LOOP(sx(av, aW) < sx(bv, bW));
      else LANE_LOOP(av < bv);
      break;
    case OpCode::Leq:
      if (op.signedOp) LANE_LOOP(sx(av, aW) <= sx(bv, bW));
      else LANE_LOOP(av <= bv);
      break;
    case OpCode::Gt:
      if (op.signedOp) LANE_LOOP(sx(av, aW) > sx(bv, bW));
      else LANE_LOOP(av > bv);
      break;
    case OpCode::Geq:
      if (op.signedOp) LANE_LOOP(sx(av, aW) >= sx(bv, bW));
      else LANE_LOOP(av >= bv);
      break;
    case OpCode::Eq:
      if (op.signedOp) LANE_LOOP(sx(av, aW) == sx(bv, bW));
      else LANE_LOOP(av == bv);
      break;
    case OpCode::Neq:
      if (op.signedOp) LANE_LOOP(sx(av, aW) != sx(bv, bW));
      else LANE_LOOP(av != bv);
      break;
    case OpCode::Dshl:
      // bv < destW <= 64 on the taken branch, so the shift is defined.
      LANE_LOOP(bv >= op.destW ? 0 : av << bv);
      break;
    case OpCode::Dshr:
      if (op.signedOp) LANE_LOOP(sx(av, aW) >> (bv > 63 ? 63 : bv));
      else LANE_LOOP(bv >= aW ? 0 : av >> bv);
      break;
    case OpCode::And:
      if (op.signedOp)
        LANE_LOOP(static_cast<uint64_t>(sx(av, aW)) & static_cast<uint64_t>(sx(bv, bW)));
      else LANE_LOOP(av & bv);
      break;
    case OpCode::Or:
      if (op.signedOp)
        LANE_LOOP(static_cast<uint64_t>(sx(av, aW)) | static_cast<uint64_t>(sx(bv, bW)));
      else LANE_LOOP(av | bv);
      break;
    case OpCode::Xor:
      if (op.signedOp)
        LANE_LOOP(static_cast<uint64_t>(sx(av, aW)) ^ static_cast<uint64_t>(sx(bv, bW)));
      else LANE_LOOP(av ^ bv);
      break;
    case OpCode::Cat:
      if (bW >= 64) LANE_LOOP(bv);
      else LANE_LOOP((av << bW) | bv);
      break;
    case OpCode::Not:
      LANE_LOOP(~av);
      break;
    case OpCode::Andr: {
      const uint64_t am = maskW(aW);
      LANE_LOOP(av == am);
      break;
    }
    case OpCode::Orr:
      LANE_LOOP(av != 0);
      break;
    case OpCode::Xorr:
      LANE_LOOP(__builtin_parityll(av));
      break;
    case OpCode::Cvt:
    case OpCode::Pad:
    case OpCode::Copy:
      if (op.signedOp) LANE_LOOP(sx(av, aW));
      else LANE_LOOP(av);
      break;
    case OpCode::Neg:
      if (op.signedOp) LANE_LOOP(-sx(av, aW));
      else LANE_LOOP(~av + 1);
      break;
    case OpCode::Shl:
      if (op.imm0 >= 64) LANE_LOOP(uint64_t{0});
      else LANE_LOOP(av << op.imm0);
      break;
    case OpCode::Shr:
      if (op.signedOp) {
        const uint32_t sh = op.imm0 > 63 ? 63 : static_cast<uint32_t>(op.imm0);
        LANE_LOOP(sx(av, aW) >> sh);
      } else if (op.imm0 >= aW) LANE_LOOP(uint64_t{0});
      else LANE_LOOP(av >> op.imm0);
      break;
    case OpCode::Bits: {
      const uint64_t bm = maskW(static_cast<uint32_t>(op.imm0 - op.imm1 + 1));
      LANE_LOOP((av >> op.imm1) & bm);
      break;
    }
    case OpCode::Head:
      if (op.imm0 == 0) LANE_LOOP(uint64_t{0});
      else LANE_LOOP(av >> (aW - op.imm0));
      break;
    case OpCode::Tail:
      LANE_LOOP(av);  // masked to destW by LANE_LOOP
      break;
    case OpCode::Mux:
      if (op.signedOp) {
        const uint32_t cW = op.cW;
        for (uint32_t l = 0; l < n; l++) {
          const uint64_t tv = static_cast<uint64_t>(sx(b[l], bW));
          const uint64_t fv = static_cast<uint64_t>(sx(c[l], cW));
          d[l] = (a[l] != 0 ? tv : fv) & dm;
        }
      } else {
        for (uint32_t l = 0; l < n; l++) d[l] = (a[l] != 0 ? b[l] : c[l]) & dm;
      }
      break;
    case OpCode::Const:
    case OpCode::MemRead:
      // Evaluated by the lane engine itself (const broadcast / per-lane
      // gather) — never routed here.
      break;
  }
}

#undef LANE_LOOP

}  // namespace essent::core
