// Conditional, Coarsened, Singular, Static (CCSS) schedule (paper §III).
//
// Joins the partitioning, the elision analysis, and the SimIR into the flat
// data structure the activity engine executes: partitions in final
// topological order, each with its op list, its externally consumed outputs
// (with consumer partition lists for push-direction triggering), and its
// in-place state-element updates; plus the global second phase for
// non-elided state elements and the input-change trigger table.
#pragma once

#include <cstdint>
#include <vector>

#include "core/elision.h"
#include "core/netlist.h"
#include "core/partitioner.h"

namespace essent::core {

struct PartOutput {
  int32_t sig = -1;
  std::vector<int32_t> consumers;  // schedule-order partition indices to wake
};

struct SchedRegWrite {
  int32_t regIdx = -1;
  std::vector<int32_t> wakeParts;  // partitions reading the register
};

struct SchedMemWrite {
  int32_t memIdx = -1;
  int32_t writerIdx = -1;
  std::vector<int32_t> wakeParts;  // partitions containing reads of the mem
};

struct CondPart {
  std::vector<int32_t> ops;  // global op indices, ascending (valid topo order)
  std::vector<PartOutput> outputs;
  std::vector<SchedRegWrite> regWrites;  // elided, applied at partition end
  std::vector<SchedMemWrite> memWrites;  // elided
};

struct CondPartSchedule {
  // Partitions in execution order (the singular static schedule).
  std::vector<CondPart> parts;
  // Per input signal (parallel to ir.inputs): partitions to wake on change.
  std::vector<std::vector<int32_t>> inputConsumers;
  // Phase 2: state elements whose update could not be elided.
  std::vector<SchedRegWrite> deferredRegs;
  std::vector<SchedMemWrite> deferredMemWrites;

  // Levelization of the acyclic ordered partition graph: levelOf[pos] is the
  // longest-path depth of the partition at schedule position pos (0 for
  // sources), computed over the combinational partition edges, the elision
  // ordering edges (reader before writer), and a chain over partitions
  // holding elided writes to the same memory. Partitions at the same level
  // are mutually independent within a cycle, so each wave can be evaluated
  // concurrently between barriers; waves[l] lists the schedule positions at
  // level l in ascending order. waves.size() is the critical-path length.
  std::vector<int32_t> levelOf;
  std::vector<std::vector<int32_t>> waves;

  // Reporting.
  size_t elidedRegs = 0;
  size_t elidedMemWrites = 0;
  size_t totalOutputs = 0;
  PartitionStats partitionStats;

  size_t numPartitions() const { return parts.size(); }
  size_t numLevels() const { return waves.size(); }
  size_t maxWaveWidth() const;
};

struct ScheduleOptions {
  PartitionOptions partition;
  bool stateElision = true;  // paper §III-B1; off for the ablation bench
};

CondPartSchedule buildSchedule(const Netlist& nl, const ScheduleOptions& opts = {});

// Builds from an existing partitioning (used by benches that sweep C_p and
// by the degenerate fine/monolithic configurations).
CondPartSchedule buildScheduleFrom(const Netlist& nl, const Partitioning& parts,
                                   bool stateElision = true);

}  // namespace essent::core
