// Width/type inference and checking for a (flattened) module.
//
// Fills in Expr::type for every expression in the module using the FIRRTL
// width rules (see support/bvops.h) and validates references/connects.
// Memory port fields ("m.r.addr") are typed from the mem declaration; the
// module is expected to contain no instances (run flattenInstances first),
// but `when` blocks are handled so inference can run before or after
// when-expansion.
#pragma once

#include <stdexcept>
#include <string>
#include <unordered_map>

#include "diag/diag.h"
#include "firrtl/ast.h"

namespace essent::firrtl {

class WidthError : public std::runtime_error {
 public:
  explicit WidthError(const std::string& msg) : std::runtime_error("firrtl width error: " + msg) {}
};

// Flat name -> declared type for every referenceable signal in a module.
class SymbolTable {
 public:
  // Builds the table from ports and declarations (recursing into whens).
  // Throws WidthError on duplicate or instance statements.
  static SymbolTable build(const Module& module);
  // Recovery variant: duplicates keep the first definition and report
  // E0301; instances/aggregates report and are skipped.
  static SymbolTable build(const Module& module, diag::DiagEngine& de);

  void define(const std::string& name, Type type);
  // Returns false (keeping the existing entry) instead of throwing.
  bool tryDefine(const std::string& name, Type type);
  bool contains(const std::string& name) const { return table_.count(name) > 0; }
  // Throws WidthError when the name is not defined.
  Type lookup(const std::string& name) const;

  const std::unordered_map<std::string, Type>& all() const { return table_; }

 private:
  std::unordered_map<std::string, Type> table_;
};

// Address width for a memory of the given depth (>= 1 bit).
uint32_t memAddrWidth(uint64_t depth);

// Infers and stores the type of `e` (and all subexpressions).
Type inferExprType(Expr& e, const SymbolTable& symbols);

// Resolves declarations written without a width ("wire w : UInt") by
// propagating widths forward from their single post-when-expansion connect,
// to a fixpoint. Output ports participate; input ports must be explicit.
// Self-referential cases that never resolve (e.g. a register whose next
// value's width depends only on its own) are reported as errors — FIRRTL's
// full constraint solver is out of scope (DESIGN.md §5).
void inferUnknownWidths(Module& module);

// Runs inference over every expression in the module, validating connects.
void inferModuleWidths(Module& module);

// Diag-collecting variants (codes E03xx). Each broken statement is reported
// with its source span and checking continues with the next statement, so
// one pass surfaces every width/type error in the module. Failed node
// definitions get a 1-bit placeholder type to limit cascading "undefined
// signal" errors. Return true when no new errors were reported.
bool inferUnknownWidths(Module& module, diag::DiagEngine& de);
bool inferModuleWidths(Module& module, diag::DiagEngine& de);

}  // namespace essent::firrtl
