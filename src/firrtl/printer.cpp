#include "firrtl/printer.h"

#include "support/strutil.h"

namespace essent::firrtl {

namespace {

std::string ind(int level) { return std::string(static_cast<size_t>(level) * 2, ' '); }

std::string escapeFormat(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string printStmt(const Stmt& s, int level) {
  std::string out;
  switch (s.kind) {
    case StmtKind::Wire:
      out = ind(level) + "wire " + s.name + " : " + s.type.toString() + "\n";
      break;
    case StmtKind::Node:
      out = ind(level) + "node " + s.name + " = " + s.expr->toString() + "\n";
      break;
    case StmtKind::Reg: {
      out = ind(level) + "reg " + s.name + " : " + s.type.toString() + ", " +
            s.clock->toString();
      if (s.resetCond)
        out += " with : (reset => (" + s.resetCond->toString() + ", " +
               s.resetInit->toString() + "))";
      out += "\n";
      break;
    }
    case StmtKind::Mem: {
      out = ind(level) + "mem " + s.name + " :\n";
      out += ind(level + 1) + "data-type => " + s.type.toString() + "\n";
      out += ind(level + 1) + "depth => " + std::to_string(s.depth) + "\n";
      out += ind(level + 1) + "read-latency => " + std::to_string(s.readLatency) + "\n";
      out += ind(level + 1) + "write-latency => " + std::to_string(s.writeLatency) + "\n";
      out += ind(level + 1) + "read-under-write => undefined\n";
      for (const auto& r : s.readers) out += ind(level + 1) + "reader => " + r.name + "\n";
      for (const auto& w : s.writers) out += ind(level + 1) + "writer => " + w.name + "\n";
      break;
    }
    case StmtKind::Inst:
      out = ind(level) + "inst " + s.name + " of " + s.moduleName + "\n";
      break;
    case StmtKind::Connect:
      out = ind(level) + s.name + " <= " + s.expr->toString() + "\n";
      break;
    case StmtKind::Invalidate:
      out = ind(level) + s.name + " is invalid\n";
      break;
    case StmtKind::When: {
      out = ind(level) + "when " + s.expr->toString() + " :\n";
      if (s.thenBody.empty()) out += ind(level + 1) + "skip\n";
      for (const auto& t : s.thenBody) out += printStmt(*t, level + 1);
      if (!s.elseBody.empty()) {
        out += ind(level) + "else :\n";
        for (const auto& t : s.elseBody) out += printStmt(*t, level + 1);
      }
      break;
    }
    case StmtKind::Printf: {
      out = ind(level) + "printf(" + s.clock->toString() + ", " + s.expr->toString() +
            ", \"" + escapeFormat(s.format) + "\"";
      for (const auto& a : s.printArgs) out += ", " + a->toString();
      out += ")\n";
      break;
    }
    case StmtKind::Stop:
      out = ind(level) + "stop(" + s.clock->toString() + ", " + s.expr->toString() + ", " +
            std::to_string(s.exitCode) + ")\n";
      break;
    case StmtKind::Assert:
      out = ind(level) + "assert(" + s.clock->toString() + ", " + s.pred->toString() + ", " +
            s.expr->toString() + ", \"" + escapeFormat(s.format) + "\")\n";
      break;
    case StmtKind::Skip:
      out = ind(level) + "skip\n";
      break;
  }
  return out;
}

std::string printModule(const Module& m) {
  std::string out = "  module " + m.name + " :\n";
  for (const auto& p : m.ports) {
    out += "    " + std::string(p.dir == PortDir::Input ? "input " : "output ") + p.name +
           " : " + p.type.toString() + "\n";
  }
  if (m.body.empty() && m.ports.empty()) out += "    skip\n";
  for (const auto& s : m.body) out += printStmt(*s, 2);
  return out;
}

std::string printCircuit(const Circuit& c) {
  std::string out = "circuit " + c.name + " :\n";
  for (const auto& m : c.modules) out += printModule(*m) + "\n";
  return out;
}

}  // namespace essent::firrtl
