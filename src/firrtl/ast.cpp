#include "firrtl/ast.h"

#include <unordered_map>

#include "support/bvops.h"
#include "support/strutil.h"

namespace essent::firrtl {

Type Type::bundle(std::vector<Field> fs) {
  Type t;
  t.kind = TypeKind::Bundle;
  t.fields = std::make_shared<std::vector<Field>>(std::move(fs));
  return t;
}

Type Type::vector(Type elemType, uint32_t n) {
  Type t;
  t.kind = TypeKind::Vector;
  t.elem = std::make_shared<Type>(std::move(elemType));
  t.size = n;
  return t;
}

bool Type::operator==(const Type& o) const {
  if (kind != o.kind) return false;
  switch (kind) {
    case TypeKind::Bundle: {
      if (fields->size() != o.fields->size()) return false;
      for (size_t i = 0; i < fields->size(); i++) {
        const Field& a = (*fields)[i];
        const Field& b = (*o.fields)[i];
        if (a.name != b.name || a.flip != b.flip || !(a.type == b.type)) return false;
      }
      return true;
    }
    case TypeKind::Vector:
      return size == o.size && *elem == *o.elem;
    default:
      return width == o.width && widthKnown == o.widthKnown;
  }
}

std::string Type::toString() const {
  switch (kind) {
    case TypeKind::UInt: return widthKnown ? strfmt("UInt<%u>", width) : "UInt";
    case TypeKind::SInt: return widthKnown ? strfmt("SInt<%u>", width) : "SInt";
    case TypeKind::Clock: return "Clock";
    case TypeKind::Reset: return "Reset";
    case TypeKind::AsyncReset: return "AsyncReset";
    case TypeKind::Bundle: {
      std::string out = "{ ";
      for (size_t i = 0; i < fields->size(); i++) {
        if (i) out += ", ";
        const Field& f = (*fields)[i];
        if (f.flip) out += "flip ";
        out += f.name + " : " + f.type.toString();
      }
      return out + " }";
    }
    case TypeKind::Vector:
      return elem->toString() + strfmt("[%u]", size);
  }
  return "?";
}

namespace {

struct PrimOpInfo {
  const char* name;
  int exprArity;
  int constArity;
};

const std::unordered_map<PrimOpKind, PrimOpInfo>& primOpTable() {
  static const std::unordered_map<PrimOpKind, PrimOpInfo> table = {
      {PrimOpKind::Add, {"add", 2, 0}},
      {PrimOpKind::Sub, {"sub", 2, 0}},
      {PrimOpKind::Mul, {"mul", 2, 0}},
      {PrimOpKind::Div, {"div", 2, 0}},
      {PrimOpKind::Rem, {"rem", 2, 0}},
      {PrimOpKind::Lt, {"lt", 2, 0}},
      {PrimOpKind::Leq, {"leq", 2, 0}},
      {PrimOpKind::Gt, {"gt", 2, 0}},
      {PrimOpKind::Geq, {"geq", 2, 0}},
      {PrimOpKind::Eq, {"eq", 2, 0}},
      {PrimOpKind::Neq, {"neq", 2, 0}},
      {PrimOpKind::Pad, {"pad", 1, 1}},
      {PrimOpKind::AsUInt, {"asUInt", 1, 0}},
      {PrimOpKind::AsSInt, {"asSInt", 1, 0}},
      {PrimOpKind::AsClock, {"asClock", 1, 0}},
      {PrimOpKind::AsAsyncReset, {"asAsyncReset", 1, 0}},
      {PrimOpKind::Shl, {"shl", 1, 1}},
      {PrimOpKind::Shr, {"shr", 1, 1}},
      {PrimOpKind::Dshl, {"dshl", 2, 0}},
      {PrimOpKind::Dshr, {"dshr", 2, 0}},
      {PrimOpKind::Cvt, {"cvt", 1, 0}},
      {PrimOpKind::Neg, {"neg", 1, 0}},
      {PrimOpKind::Not, {"not", 1, 0}},
      {PrimOpKind::And, {"and", 2, 0}},
      {PrimOpKind::Or, {"or", 2, 0}},
      {PrimOpKind::Xor, {"xor", 2, 0}},
      {PrimOpKind::Andr, {"andr", 1, 0}},
      {PrimOpKind::Orr, {"orr", 1, 0}},
      {PrimOpKind::Xorr, {"xorr", 1, 0}},
      {PrimOpKind::Cat, {"cat", 2, 0}},
      {PrimOpKind::Bits, {"bits", 1, 2}},
      {PrimOpKind::Head, {"head", 1, 1}},
      {PrimOpKind::Tail, {"tail", 1, 1}},
  };
  return table;
}

}  // namespace

const char* primOpName(PrimOpKind op) { return primOpTable().at(op).name; }

bool primOpFromName(const std::string& name, PrimOpKind* out) {
  for (const auto& [kind, info] : primOpTable()) {
    if (name == info.name) {
      *out = kind;
      return true;
    }
  }
  return false;
}

int primOpExprArity(PrimOpKind op) { return primOpTable().at(op).exprArity; }
int primOpConstArity(PrimOpKind op) { return primOpTable().at(op).constArity; }

ExprPtr Expr::ref(std::string n) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Ref;
  e->name = std::move(n);
  return e;
}

ExprPtr Expr::uintLit(uint32_t width, BitVec v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::UIntLit;
  e->litWidth = width;
  e->value = std::move(v);
  e->type = Type::uint_(width);
  return e;
}

ExprPtr Expr::sintLit(uint32_t width, BitVec v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::SIntLit;
  e->litWidth = width;
  e->value = std::move(v);
  e->type = Type::sint(width);
  return e;
}

ExprPtr Expr::mux(ExprPtr sel, ExprPtr tval, ExprPtr fval) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Mux;
  e->args.push_back(std::move(sel));
  e->args.push_back(std::move(tval));
  e->args.push_back(std::move(fval));
  return e;
}

ExprPtr Expr::validIf(ExprPtr cond, ExprPtr value) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::ValidIf;
  e->args.push_back(std::move(cond));
  e->args.push_back(std::move(value));
  return e;
}

ExprPtr Expr::prim(PrimOpKind op, std::vector<ExprPtr> args, std::vector<int64_t> consts) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Prim;
  e->op = op;
  e->args = std::move(args);
  e->consts = std::move(consts);
  return e;
}

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->name = name;
  e->value = value;
  e->litWidth = litWidth;
  e->op = op;
  e->consts = consts;
  e->type = type;
  e->line = line;
  e->col = col;
  for (const auto& a : args) e->args.push_back(a->clone());
  return e;
}

std::string Expr::toString() const {
  switch (kind) {
    case ExprKind::Ref:
      return name;
    case ExprKind::UIntLit:
      return strfmt("UInt<%u>(\"h%s\")", litWidth, value.toHexString().c_str());
    case ExprKind::SIntLit:
      return strfmt("SInt<%u>(%s)", litWidth,
                    bvops::extend(value, true, litWidth).toSignedDecString().c_str());
    case ExprKind::Mux:
      return "mux(" + args[0]->toString() + ", " + args[1]->toString() + ", " +
             args[2]->toString() + ")";
    case ExprKind::ValidIf:
      return "validif(" + args[0]->toString() + ", " + args[1]->toString() + ")";
    case ExprKind::Prim: {
      std::string out = std::string(primOpName(op)) + "(";
      bool first = true;
      for (const auto& a : args) {
        if (!first) out += ", ";
        out += a->toString();
        first = false;
      }
      for (int64_t c : consts) {
        if (!first) out += ", ";
        out += std::to_string(c);
        first = false;
      }
      return out + ")";
    }
  }
  return "?";
}

StmtPtr Stmt::clone() const {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->name = name;
  s->type = type;
  if (expr) s->expr = expr->clone();
  if (clock) s->clock = clock->clone();
  if (pred) s->pred = pred->clone();
  if (resetCond) s->resetCond = resetCond->clone();
  if (resetInit) s->resetInit = resetInit->clone();
  s->depth = depth;
  s->readLatency = readLatency;
  s->writeLatency = writeLatency;
  s->readers = readers;
  s->writers = writers;
  s->moduleName = moduleName;
  for (const auto& t : thenBody) s->thenBody.push_back(t->clone());
  for (const auto& t : elseBody) s->elseBody.push_back(t->clone());
  s->format = format;
  for (const auto& a : printArgs) s->printArgs.push_back(a->clone());
  s->exitCode = exitCode;
  s->line = line;
  s->col = col;
  return s;
}

StmtPtr makeWire(std::string name, Type t) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Wire;
  s->name = std::move(name);
  s->type = t;
  return s;
}

StmtPtr makeNode(std::string name, ExprPtr value) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Node;
  s->name = std::move(name);
  s->expr = std::move(value);
  return s;
}

StmtPtr makeReg(std::string name, Type t, ExprPtr clock, ExprPtr resetCond, ExprPtr resetInit) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Reg;
  s->name = std::move(name);
  s->type = t;
  s->clock = std::move(clock);
  s->resetCond = std::move(resetCond);
  s->resetInit = std::move(resetInit);
  return s;
}

StmtPtr makeConnect(std::string target, ExprPtr value) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Connect;
  s->name = std::move(target);
  s->expr = std::move(value);
  return s;
}

StmtPtr makeInvalidate(std::string target) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Invalidate;
  s->name = std::move(target);
  return s;
}

StmtPtr makeWhen(ExprPtr cond, std::vector<StmtPtr> thenBody, std::vector<StmtPtr> elseBody) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::When;
  s->expr = std::move(cond);
  s->thenBody = std::move(thenBody);
  s->elseBody = std::move(elseBody);
  return s;
}

const Port* Module::findPort(const std::string& n) const {
  for (const auto& p : ports)
    if (p.name == n) return &p;
  return nullptr;
}

Module* Circuit::findModule(const std::string& n) const {
  for (const auto& m : modules)
    if (m->name == n) return m.get();
  return nullptr;
}

}  // namespace essent::firrtl
