#include "firrtl/lexer.h"

namespace essent::firrtl {

namespace {

bool isIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == '$';
}

bool isIdentChar(char c) {
  return isIdentStart(c) || (c >= '0' && c <= '9');
}

bool isDigit(char c) { return c >= '0' && c <= '9'; }

}  // namespace

std::vector<Token> lex(const std::string& src, diag::DiagEngine& de) {
  std::vector<Token> toks;
  std::vector<int> indents = {0};
  size_t i = 0;
  int line = 1;
  size_t n = src.size();

  auto push = [&](TokKind k, std::string text, int col, int64_t val = 0) {
    toks.push_back(Token{k, std::move(text), val, line, col});
  };
  auto span = [&](int col, int width = 1) {
    diag::SourceSpan s;
    s.line = line;
    s.col = col;
    s.endCol = col + width;
    return s;
  };

  while (i < n) {
    // --- start of a line: measure indentation ---
    size_t lineStart = i;
    int indent = 0;
    bool tabReported = false;
    while (i < n && (src[i] == ' ' || src[i] == '\t')) {
      if (src[i] == '\t') {
        // Hard error: tab width is ambiguous across editors, so a tab that
        // silently counts as an 8-column stop can re-nest whole blocks.
        // Recovery still advances to the next tab stop (the old behaviour)
        // so the rest of the file lexes with plausible structure.
        if (!tabReported) {
          de.error("E0103", "tab character in indentation (use spaces)",
                   span(static_cast<int>(i - lineStart) + 1));
          tabReported = true;
        }
        indent += 8 - (indent % 8);
      } else {
        indent += 1;
      }
      i++;
    }
    // Blank line or comment-only line: skip without indentation effects.
    if (i < n && (src[i] == '\n' || src[i] == '\r' || src[i] == ';')) {
      while (i < n && src[i] != '\n') i++;
      if (i < n) i++;
      line++;
      continue;
    }
    if (i >= n) break;

    if (indent > indents.back()) {
      indents.push_back(indent);
      push(TokKind::Indent, "", indent);
    } else {
      while (indent < indents.back()) {
        indents.pop_back();
        push(TokKind::Dedent, "", indent);
      }
      if (indent != indents.back()) {
        // Recovery: treat the line as belonging to the enclosing block the
        // dedent landed in, so subsequent statements keep their structure.
        de.error("E0104",
                 "inconsistent dedent: indentation matches no enclosing block",
                 span(1, indent > 0 ? indent : 1));
      }
    }

    // --- tokens within the line ---
    size_t lineTokStart = toks.size();
    while (i < n && src[i] != '\n') {
      char c = src[i];
      int col = static_cast<int>(i - lineStart) + 1;
      if (c == ' ' || c == '\t' || c == '\r') {
        i++;
        continue;
      }
      if (c == ';') {  // comment to end of line
        while (i < n && src[i] != '\n') i++;
        break;
      }
      if (c == '@') {  // @[fileinfo] — consume and drop
        while (i < n && src[i] != ']' && src[i] != '\n') i++;
        if (i < n && src[i] == ']') i++;
        continue;
      }
      if (isIdentStart(c)) {
        size_t start = i;
        while (i < n) {
          if (isIdentChar(src[i])) {
            i++;
          } else if (src[i] == '-' && i + 1 < n && isIdentStart(src[i + 1])) {
            // Hyphenated keywords like read-latency; FIRRTL has no infix
            // minus so this is unambiguous.
            i += 2;
          } else {
            break;
          }
        }
        push(TokKind::Ident, src.substr(start, i - start), col);
        continue;
      }
      if (isDigit(c) || (c == '-' && i + 1 < n && isDigit(src[i + 1])) ||
          (c == '+' && i + 1 < n && isDigit(src[i + 1]))) {
        size_t start = i;
        if (c == '-' || c == '+') i++;
        while (i < n && (isDigit(src[i]) || src[i] == '_')) i++;
        std::string text = src.substr(start, i - start);
        std::string digits;
        for (char d : text)
          if (d != '_') digits += d;
        int64_t value = 0;
        try {
          value = std::stoll(digits);
        } catch (const std::out_of_range&) {
          de.error("E0105", "integer literal '" + text + "' does not fit in 64 bits",
                   span(col, static_cast<int>(text.size())));
        }
        push(TokKind::IntLit, text, col, value);
        continue;
      }
      if (c == '"') {
        int openCol = col;
        i++;
        std::string val;
        bool closed = false;
        while (i < n) {
          if (src[i] == '"') {
            closed = true;
            i++;  // closing quote
            break;
          }
          if (src[i] == '\n') break;  // unterminated: stop at the line end
          if (src[i] == '\\' && i + 1 < n && src[i + 1] != '\n') {
            i++;
            switch (src[i]) {
              case 'n': val += '\n'; break;
              case 't': val += '\t'; break;
              case '\\': val += '\\'; break;
              case '"': val += '"'; break;
              case '%': val += '%'; break;  // printf literal percent
              default: val += src[i]; break;
            }
            i++;
          } else {
            val += src[i++];
          }
        }
        if (!closed) {
          de.error("E0102",
                   i >= n ? "unterminated string literal at end of file"
                          : "unterminated string literal",
                   span(openCol, static_cast<int>(i - lineStart) + 1 - openCol));
        }
        push(TokKind::StringLit, val, openCol);
        continue;
      }
      // Digraphs first.
      if (i + 1 < n) {
        std::string two = src.substr(i, 2);
        if (two == "<=" || two == "=>" || two == "<-") {
          push(TokKind::Punct, two, col);
          i += 2;
          continue;
        }
      }
      switch (c) {
        case '(': case ')': case '<': case '>': case '[': case ']':
        case '{': case '}': case ',': case '.': case ':': case '=':
          push(TokKind::Punct, std::string(1, c), col);
          i++;
          continue;
        default:
          // Recovery: drop the character and keep lexing the line.
          de.error("E0101", std::string("unexpected character '") + c + "'", span(col));
          i++;
          continue;
      }
    }
    if (i < n) i++;  // consume '\n'
    if (toks.size() > lineTokStart) push(TokKind::Newline, "", 0);
    line++;
  }

  while (indents.size() > 1) {
    indents.pop_back();
    toks.push_back(Token{TokKind::Dedent, "", 0, line, 0});
  }
  toks.push_back(Token{TokKind::Eof, "", 0, line, 0});
  return toks;
}

std::vector<Token> lex(const std::string& src) {
  diag::DiagEngine de;
  std::vector<Token> toks = lex(src, de);
  if (de.hasErrors()) {
    for (const diag::Diagnostic& d : de.diagnostics())
      if (d.severity == diag::Severity::Error)
        throw LexError(d.message, d.span.line);
  }
  return toks;
}

}  // namespace essent::firrtl
