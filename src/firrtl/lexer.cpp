#include "firrtl/lexer.h"

namespace essent::firrtl {

namespace {

bool isIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == '$';
}

bool isIdentChar(char c) {
  return isIdentStart(c) || (c >= '0' && c <= '9');
}

bool isDigit(char c) { return c >= '0' && c <= '9'; }

}  // namespace

std::vector<Token> lex(const std::string& src) {
  std::vector<Token> toks;
  std::vector<int> indents = {0};
  size_t i = 0;
  int line = 1;
  size_t n = src.size();

  auto push = [&](TokKind k, std::string text, int col, int64_t val = 0) {
    toks.push_back(Token{k, std::move(text), val, line, col});
  };

  while (i < n) {
    // --- start of a line: measure indentation ---
    size_t lineStart = i;
    int indent = 0;
    while (i < n && (src[i] == ' ' || src[i] == '\t')) {
      indent += src[i] == '\t' ? 8 - (indent % 8) : 1;
      i++;
    }
    // Blank line or comment-only line: skip without indentation effects.
    if (i < n && (src[i] == '\n' || src[i] == '\r' || src[i] == ';')) {
      while (i < n && src[i] != '\n') i++;
      if (i < n) i++;
      line++;
      continue;
    }
    if (i >= n) break;

    if (indent > indents.back()) {
      indents.push_back(indent);
      push(TokKind::Indent, "", indent);
    } else {
      while (indent < indents.back()) {
        indents.pop_back();
        push(TokKind::Dedent, "", indent);
      }
      if (indent != indents.back())
        throw LexError("inconsistent dedent", line);
    }

    // --- tokens within the line ---
    bool sawToken = false;
    while (i < n && src[i] != '\n') {
      char c = src[i];
      int col = static_cast<int>(i - lineStart) + 1;
      if (c == ' ' || c == '\t' || c == '\r') {
        i++;
        continue;
      }
      if (c == ';') {  // comment to end of line
        while (i < n && src[i] != '\n') i++;
        break;
      }
      if (c == '@') {  // @[fileinfo] — consume and drop
        while (i < n && src[i] != ']' && src[i] != '\n') i++;
        if (i < n && src[i] == ']') i++;
        continue;
      }
      sawToken = true;
      if (isIdentStart(c)) {
        size_t start = i;
        while (i < n) {
          if (isIdentChar(src[i])) {
            i++;
          } else if (src[i] == '-' && i + 1 < n && isIdentStart(src[i + 1])) {
            // Hyphenated keywords like read-latency; FIRRTL has no infix
            // minus so this is unambiguous.
            i += 2;
          } else {
            break;
          }
        }
        push(TokKind::Ident, src.substr(start, i - start), col);
        continue;
      }
      if (isDigit(c) || (c == '-' && i + 1 < n && isDigit(src[i + 1])) ||
          (c == '+' && i + 1 < n && isDigit(src[i + 1]))) {
        size_t start = i;
        if (c == '-' || c == '+') i++;
        while (i < n && (isDigit(src[i]) || src[i] == '_')) i++;
        std::string text = src.substr(start, i - start);
        std::string digits;
        for (char d : text)
          if (d != '_') digits += d;
        push(TokKind::IntLit, text, col, std::stoll(digits));
        continue;
      }
      if (c == '"') {
        i++;
        std::string val;
        while (i < n && src[i] != '"') {
          if (src[i] == '\\' && i + 1 < n) {
            i++;
            switch (src[i]) {
              case 'n': val += '\n'; break;
              case 't': val += '\t'; break;
              case '\\': val += '\\'; break;
              case '"': val += '"'; break;
              case '%': val += '%'; break;  // printf literal percent
              default: val += src[i]; break;
            }
            i++;
          } else if (src[i] == '\n') {
            throw LexError("unterminated string literal", line);
          } else {
            val += src[i++];
          }
        }
        if (i >= n) throw LexError("unterminated string literal", line);
        i++;  // closing quote
        push(TokKind::StringLit, val, col);
        continue;
      }
      // Digraphs first.
      if (i + 1 < n) {
        std::string two = src.substr(i, 2);
        if (two == "<=" || two == "=>" || two == "<-") {
          push(TokKind::Punct, two, col);
          i += 2;
          continue;
        }
      }
      switch (c) {
        case '(': case ')': case '<': case '>': case '[': case ']':
        case '{': case '}': case ',': case '.': case ':': case '=':
          push(TokKind::Punct, std::string(1, c), col);
          i++;
          continue;
        default:
          throw LexError(std::string("unexpected character '") + c + "'", line);
      }
    }
    if (i < n) i++;  // consume '\n'
    if (sawToken) push(TokKind::Newline, "", 0);
    line++;
  }

  while (indents.size() > 1) {
    indents.pop_back();
    toks.push_back(Token{TokKind::Dedent, "", 0, line, 0});
  }
  toks.push_back(Token{TokKind::Eof, "", 0, line, 0});
  return toks;
}

}  // namespace essent::firrtl
