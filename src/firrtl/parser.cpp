#include "firrtl/parser.h"

#include "firrtl/lexer.h"
#include "support/bvops.h"

namespace essent::firrtl {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  std::unique_ptr<Circuit> parseCircuit() {
    expectIdent("circuit");
    auto circuit = std::make_unique<Circuit>();
    circuit->name = expectAnyIdent();
    expectPunct(":");
    expectNewline();
    expectIndent();
    while (!atDedent()) circuit->modules.push_back(parseModule());
    expectDedent();
    if (!circuit->mainModule())
      throw err("no module named '" + circuit->name + "' (the circuit name) found");
    return circuit;
  }

 private:
  std::vector<Token> toks_;
  size_t pos_ = 0;

  const Token& cur() const { return toks_[pos_]; }
  const Token& peekTok(size_t ahead = 1) const {
    size_t p = pos_ + ahead;
    return p < toks_.size() ? toks_[p] : toks_.back();
  }
  void advance() {
    if (pos_ + 1 < toks_.size()) pos_++;
  }

  ParseError err(const std::string& msg) const { return ParseError(msg, cur().line); }

  bool atIdent(const std::string& text) const {
    return cur().kind == TokKind::Ident && cur().text == text;
  }
  bool atPunct(const std::string& text) const {
    return cur().kind == TokKind::Punct && cur().text == text;
  }
  bool atDedent() const { return cur().kind == TokKind::Dedent || cur().kind == TokKind::Eof; }

  bool acceptIdent(const std::string& text) {
    if (!atIdent(text)) return false;
    advance();
    return true;
  }
  bool acceptPunct(const std::string& text) {
    if (!atPunct(text)) return false;
    advance();
    return true;
  }

  void expectIdent(const std::string& text) {
    if (!acceptIdent(text)) throw err("expected '" + text + "', got '" + cur().text + "'");
  }
  void expectPunct(const std::string& text) {
    if (!acceptPunct(text)) throw err("expected '" + text + "', got '" + cur().text + "'");
  }
  std::string expectAnyIdent() {
    if (cur().kind != TokKind::Ident) throw err("expected identifier, got '" + cur().text + "'");
    std::string t = cur().text;
    advance();
    return t;
  }
  int64_t expectInt() {
    if (cur().kind != TokKind::IntLit) throw err("expected integer, got '" + cur().text + "'");
    int64_t v = cur().intValue;
    advance();
    return v;
  }
  std::string expectString() {
    if (cur().kind != TokKind::StringLit) throw err("expected string literal");
    std::string t = cur().text;
    advance();
    return t;
  }
  void expectNewline() {
    if (cur().kind != TokKind::Newline) throw err("expected end of line, got '" + cur().text + "'");
    advance();
  }
  void expectIndent() {
    if (cur().kind != TokKind::Indent) throw err("expected indented block");
    advance();
  }
  void expectDedent() {
    if (cur().kind != TokKind::Dedent) throw err("expected dedent");
    advance();
  }

  // --- grammar productions ---

  std::unique_ptr<Module> parseModule() {
    expectIdent("module");
    auto mod = std::make_unique<Module>();
    mod->name = expectAnyIdent();
    expectPunct(":");
    expectNewline();
    expectIndent();
    while (atIdent("input") || atIdent("output")) {
      Port p;
      p.dir = acceptIdent("input") ? PortDir::Input : (expectIdent("output"), PortDir::Output);
      p.name = expectAnyIdent();
      expectPunct(":");
      p.type = parseType();
      expectNewline();
      mod->ports.push_back(std::move(p));
    }
    while (!atDedent()) mod->body.push_back(parseStmt());
    expectDedent();
    return mod;
  }

  Type parseType() {
    Type t = parseBaseType();
    // Vector suffixes bind left-to-right: UInt<8>[4][2] is a 2-vector of
    // 4-vectors of UInt<8>.
    while (atPunct("[")) {
      advance();
      int64_t n = expectInt();
      if (n < 0) throw err("negative vector size");
      expectPunct("]");
      t = Type::vector(std::move(t), static_cast<uint32_t>(n));
    }
    return t;
  }

  Type parseBaseType() {
    if (acceptIdent("Clock")) return Type::clock();
    if (acceptIdent("Reset")) return Type::reset();
    if (acceptIdent("AsyncReset")) return {TypeKind::AsyncReset, 1, true, nullptr, nullptr, 0};
    if (acceptPunct("{")) {
      std::vector<Field> fields;
      if (!atPunct("}")) {
        while (true) {
          Field f;
          f.flip = acceptIdent("flip");
          f.name = expectAnyIdent();
          expectPunct(":");
          f.type = parseType();
          fields.push_back(std::move(f));
          if (!acceptPunct(",")) break;
        }
      }
      expectPunct("}");
      return Type::bundle(std::move(fields));
    }
    bool isSigned;
    if (acceptIdent("UInt")) isSigned = false;
    else if (acceptIdent("SInt")) isSigned = true;
    else throw err("expected type, got '" + cur().text + "'");
    Type t;
    t.kind = isSigned ? TypeKind::SInt : TypeKind::UInt;
    if (acceptPunct("<")) {
      int64_t w = expectInt();
      if (w < 0) throw err("negative width");
      t.width = static_cast<uint32_t>(w);
      t.widthKnown = true;
      expectPunct(">");
    }
    return t;
  }

  StmtPtr parseStmt() {
    if (atIdent("wire") && peekTok().kind == TokKind::Ident) return parseWire();
    if (atIdent("node") && peekTok().kind == TokKind::Ident) return parseNode();
    if (atIdent("reg") && peekTok().kind == TokKind::Ident) return parseReg();
    if (atIdent("mem") && peekTok().kind == TokKind::Ident) return parseMem();
    if (atIdent("inst") && peekTok().kind == TokKind::Ident) return parseInst();
    if (atIdent("when")) return parseWhen();
    if (atIdent("printf") && peekTok().kind == TokKind::Punct && peekTok().text == "(")
      return parsePrintf();
    if (atIdent("stop") && peekTok().kind == TokKind::Punct && peekTok().text == "(")
      return parseStop();
    if (atIdent("assert") && peekTok().kind == TokKind::Punct && peekTok().text == "(")
      return parseAssert();
    if (atIdent("skip")) {
      advance();
      expectNewline();
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::Skip;
      return s;
    }
    // Otherwise: connect or invalidate, both starting with a reference path.
    std::string target = parseRefPath();
    if (acceptIdent("is")) {
      expectIdent("invalid");
      expectNewline();
      return makeInvalidate(std::move(target));
    }
    if (!acceptPunct("<=") && !acceptPunct("<-"))
      throw err("expected '<=' in connect to '" + target + "'");
    ExprPtr rhs = parseExpr();
    expectNewline();
    return makeConnect(std::move(target), std::move(rhs));
  }

  StmtPtr parseWire() {
    expectIdent("wire");
    std::string name = expectAnyIdent();
    expectPunct(":");
    Type t = parseType();
    expectNewline();
    return makeWire(std::move(name), t);
  }

  StmtPtr parseNode() {
    expectIdent("node");
    std::string name = expectAnyIdent();
    expectPunct("=");
    ExprPtr value = parseExpr();
    expectNewline();
    return makeNode(std::move(name), std::move(value));
  }

  StmtPtr parseReg() {
    expectIdent("reg");
    std::string name = expectAnyIdent();
    expectPunct(":");
    Type t = parseType();
    expectPunct(",");
    ExprPtr clock = parseExpr();
    ExprPtr resetCond, resetInit;
    if (acceptIdent("with")) {
      expectPunct(":");
      auto parseResetClause = [&] {
        expectIdent("reset");
        expectPunct("=>");
        expectPunct("(");
        resetCond = parseExpr();
        expectPunct(",");
        resetInit = parseExpr();
        expectPunct(")");
      };
      if (acceptPunct("(")) {
        // Inline form: with : (reset => (cond, init))
        parseResetClause();
        expectPunct(")");
        expectNewline();
      } else {
        // Block form (as emitted by Chisel):
        //   reg x : UInt<8>, clock with :
        //     reset => (reset, UInt<8>(0))
        expectNewline();
        expectIndent();
        if (acceptPunct("(")) {
          parseResetClause();
          expectPunct(")");
        } else {
          parseResetClause();
        }
        expectNewline();
        expectDedent();
      }
      return makeReg(std::move(name), t, std::move(clock), std::move(resetCond),
                     std::move(resetInit));
    }
    expectNewline();
    return makeReg(std::move(name), t, std::move(clock), std::move(resetCond),
                   std::move(resetInit));
  }

  StmtPtr parseMem() {
    expectIdent("mem");
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Mem;
    s->name = expectAnyIdent();
    expectPunct(":");
    expectNewline();
    expectIndent();
    bool sawType = false, sawDepth = false;
    while (!atDedent()) {
      std::string field = expectAnyIdent();
      expectPunct("=>");
      if (field == "data-type") {
        s->type = parseType();
        if ((s->type.kind == TypeKind::UInt || s->type.kind == TypeKind::SInt) &&
            !s->type.widthKnown)
          throw err("mem data-type must have an explicit width");
        sawType = true;
      } else if (field == "depth") {
        s->depth = static_cast<uint64_t>(expectInt());
        sawDepth = true;
      } else if (field == "read-latency") {
        s->readLatency = static_cast<uint32_t>(expectInt());
        if (s->readLatency > 1) throw err("read-latency > 1 unsupported");
      } else if (field == "write-latency") {
        s->writeLatency = static_cast<uint32_t>(expectInt());
        if (s->writeLatency != 1) throw err("write-latency must be 1");
      } else if (field == "read-under-write") {
        expectAnyIdent();  // undefined/old/new — all treated as 'old'
      } else if (field == "reader") {
        s->readers.push_back(MemPort{expectAnyIdent()});
      } else if (field == "writer") {
        s->writers.push_back(MemPort{expectAnyIdent()});
      } else {
        throw err("unknown mem field '" + field + "'");
      }
      expectNewline();
    }
    expectDedent();
    if (!sawType || !sawDepth) throw err("mem '" + s->name + "' missing data-type or depth");
    return s;
  }

  StmtPtr parseInst() {
    expectIdent("inst");
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Inst;
    s->name = expectAnyIdent();
    expectIdent("of");
    s->moduleName = expectAnyIdent();
    expectNewline();
    return s;
  }

  StmtPtr parseWhen() {
    expectIdent("when");
    ExprPtr cond = parseExpr();
    expectPunct(":");
    expectNewline();
    expectIndent();
    std::vector<StmtPtr> thenBody;
    while (!atDedent()) thenBody.push_back(parseStmt());
    expectDedent();
    std::vector<StmtPtr> elseBody;
    if (atIdent("else")) {
      advance();
      if (atIdent("when")) {
        // `else when ...` chains as a nested when in the else body.
        elseBody.push_back(parseWhen());
      } else {
        expectPunct(":");
        expectNewline();
        expectIndent();
        while (!atDedent()) elseBody.push_back(parseStmt());
        expectDedent();
      }
    }
    return makeWhen(std::move(cond), std::move(thenBody), std::move(elseBody));
  }

  StmtPtr parsePrintf() {
    expectIdent("printf");
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Printf;
    expectPunct("(");
    s->clock = parseExpr();
    expectPunct(",");
    s->expr = parseExpr();  // enable condition
    expectPunct(",");
    s->format = expectString();
    while (acceptPunct(",")) s->printArgs.push_back(parseExpr());
    expectPunct(")");
    expectNewline();
    return s;
  }

  StmtPtr parseStop() {
    expectIdent("stop");
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Stop;
    expectPunct("(");
    s->clock = parseExpr();
    expectPunct(",");
    s->expr = parseExpr();  // enable condition
    expectPunct(",");
    s->exitCode = static_cast<int>(expectInt());
    expectPunct(")");
    expectNewline();
    return s;
  }

  StmtPtr parseAssert() {
    // assert(clock, predicate, enable, "message")
    expectIdent("assert");
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Assert;
    expectPunct("(");
    s->clock = parseExpr();
    expectPunct(",");
    s->pred = parseExpr();
    expectPunct(",");
    s->expr = parseExpr();  // enable
    expectPunct(",");
    s->format = expectString();
    expectPunct(")");
    expectNewline();
    return s;
  }

  std::string parseRefPath() {
    std::string path = expectAnyIdent();
    while (atPunct(".") || atPunct("[")) {
      if (acceptPunct(".")) {
        if (cur().kind == TokKind::Ident) {
          path += ".";
          path += expectAnyIdent();
        } else if (cur().kind == TokKind::IntLit) {
          path += ".";
          path += std::to_string(expectInt());
        } else {
          throw err("expected field name after '.'");
        }
      } else {
        // Constant vector subindex: x[3] is canonicalized to x.3. Dynamic
        // subaccess (x[expr]) is out of scope and rejected here.
        advance();
        if (cur().kind != TokKind::IntLit)
          throw err("dynamic subaccess (x[expr]) is unsupported; use a mux tree");
        path += ".";
        path += std::to_string(expectInt());
        expectPunct("]");
      }
    }
    return path;
  }

  ExprPtr parseExpr() {
    if (atIdent("UInt") || atIdent("SInt")) return parseLiteral();
    if (atIdent("mux") && peekTok().kind == TokKind::Punct && peekTok().text == "(") {
      advance();
      advance();
      ExprPtr sel = parseExpr();
      expectPunct(",");
      ExprPtr tval = parseExpr();
      expectPunct(",");
      ExprPtr fval = parseExpr();
      expectPunct(")");
      return Expr::mux(std::move(sel), std::move(tval), std::move(fval));
    }
    if (atIdent("validif") && peekTok().kind == TokKind::Punct && peekTok().text == "(") {
      advance();
      advance();
      ExprPtr cond = parseExpr();
      expectPunct(",");
      ExprPtr value = parseExpr();
      expectPunct(")");
      return Expr::validIf(std::move(cond), std::move(value));
    }
    if (cur().kind == TokKind::Ident && peekTok().kind == TokKind::Punct &&
        peekTok().text == "(") {
      PrimOpKind op;
      if (primOpFromName(cur().text, &op)) {
        advance();
        advance();
        std::vector<ExprPtr> args;
        std::vector<int64_t> consts;
        int wantExprs = primOpExprArity(op);
        int wantConsts = primOpConstArity(op);
        for (int k = 0; k < wantExprs; k++) {
          if (k) expectPunct(",");
          args.push_back(parseExpr());
        }
        for (int k = 0; k < wantConsts; k++) {
          expectPunct(",");
          consts.push_back(expectInt());
        }
        expectPunct(")");
        return Expr::prim(op, std::move(args), std::move(consts));
      }
    }
    if (cur().kind == TokKind::Ident) return Expr::ref(parseRefPath());
    throw err("expected expression, got '" + cur().text + "'");
  }

  ExprPtr parseLiteral() {
    bool isSigned = atIdent("SInt");
    advance();
    bool widthKnown = false;
    uint32_t width = 0;
    if (acceptPunct("<")) {
      width = static_cast<uint32_t>(expectInt());
      widthKnown = true;
      expectPunct(">");
    }
    expectPunct("(");
    BitVec value;
    if (cur().kind == TokKind::StringLit) {
      std::string s = expectString();
      if (s.empty()) throw err("empty literal string");
      char base = s[0];
      std::string digits = s.substr(1);
      bool negate = false;
      if (!digits.empty() && (digits[0] == '-' || digits[0] == '+')) {
        negate = digits[0] == '-';
        digits = digits.substr(1);
      }
      uint32_t w = widthKnown ? width : 1024;  // parse wide, size below
      if (base == 'h') value = BitVec::fromHexString(w, digits);
      else if (base == 'b') {
        value = BitVec(w);
        uint32_t pos = 0;
        for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
          if (*it == '_') continue;
          if (*it != '0' && *it != '1') throw err("bad binary digit");
          value.setBit(pos++, *it == '1');
        }
      } else if (base == 'o') {
        value = BitVec(w);
        uint32_t pos = 0;
        for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
          if (*it == '_') continue;
          if (*it < '0' || *it > '7') throw err("bad octal digit");
          uint64_t oct = static_cast<uint64_t>(*it - '0');
          for (int b = 0; b < 3; b++) value.setBit(pos + b, (oct >> b) & 1);
          pos += 3;
        }
      } else if (base == 'd' || (base >= '0' && base <= '9')) {
        std::string dec = base == 'd' ? digits : s;
        value = BitVec::fromDecString(w, dec);
      } else {
        throw err(std::string("unknown literal base '") + base + "'");
      }
      if (negate) {
        value = bvops::extend(bvops::sub(BitVec(w), value, false), false, w);
      }
      if (!widthKnown) {
        width = value.bitLength();
        if (isSigned) width += 1;
        if (width == 0) width = 1;
        value = bvops::extend(value, false, width);
      } else {
        value = bvops::extend(value, false, width);
      }
    } else {
      int64_t v = expectInt();
      if (!widthKnown) {
        uint64_t mag = v < 0 ? static_cast<uint64_t>(-v) : static_cast<uint64_t>(v);
        uint32_t bits = 0;
        while (mag >> bits) bits++;
        width = isSigned ? bits + 1 : (bits == 0 ? 1 : bits);
      }
      value = BitVec::fromI64(width, v);
    }
    expectPunct(")");
    return isSigned ? Expr::sintLit(width, std::move(value))
                    : Expr::uintLit(width, std::move(value));
  }
};

}  // namespace

std::unique_ptr<Circuit> parseCircuit(const std::string& source) {
  Parser p(lex(source));
  return p.parseCircuit();
}

}  // namespace essent::firrtl
