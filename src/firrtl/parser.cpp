#include "firrtl/parser.h"

#include <cctype>

#include "firrtl/lexer.h"
#include "support/bvops.h"

namespace essent::firrtl {

namespace {

// Unwind token for panic-mode recovery: thrown by the expect* helpers after
// the diagnostic has been reported, caught at the nearest statement or
// module boundary, never escapes parseCircuit.
struct SyntaxAbort {};

class Parser {
 public:
  Parser(std::vector<Token> toks, diag::DiagEngine& de) : toks_(std::move(toks)), de_(de) {}

  std::unique_ptr<Circuit> parseCircuit() {
    auto circuit = std::make_unique<Circuit>();
    try {
      expectIdent("circuit");
      circuit->name = expectAnyIdent();
      expectPunct(":");
      expectNewline();
      expectIndent();
    } catch (const SyntaxAbort&) {
      syncToLineEnd();
      skipBlockIfIndent();
      return circuit;
    }
    while (!atDedent() && !de_.atErrorLimit()) {
      try {
        circuit->modules.push_back(parseModule());
      } catch (const SyntaxAbort&) {
        syncToLineEnd();
        skipBlockIfIndent();
      }
    }
    if (atDedent()) advance();
    if (!de_.hasErrors() && !circuit->mainModule())
      de_.error("E0206",
                "no module named '" + circuit->name + "' (the circuit name) found",
                {});
    return circuit;
  }

 private:
  std::vector<Token> toks_;
  diag::DiagEngine& de_;
  size_t pos_ = 0;

  const Token& cur() const { return toks_[pos_]; }
  const Token& peekTok(size_t ahead = 1) const {
    size_t p = pos_ + ahead;
    return p < toks_.size() ? toks_[p] : toks_.back();
  }
  void advance() {
    if (pos_ + 1 < toks_.size()) pos_++;
  }

  static diag::SourceSpan spanOf(const Token& t) {
    diag::SourceSpan s;
    s.line = t.line;
    s.col = t.col;
    int width = static_cast<int>(t.text.size());
    if (t.kind == TokKind::StringLit) width += 2;  // quotes
    if (width > 0 && t.col > 0) s.endCol = t.col + width;
    return s;
  }

  std::string describe(const Token& t) const {
    switch (t.kind) {
      case TokKind::Indent: return "indented block";
      case TokKind::Dedent: return "end of block";
      case TokKind::Newline: return "end of line";
      case TokKind::Eof: return "end of file";
      case TokKind::StringLit: return "string literal";
      default: return "'" + t.text + "'";
    }
  }

  // Reports at the current token and aborts to the nearest recovery point.
  [[noreturn]] void fail(const char* code, const std::string& msg) const {
    de_.error(code, msg, spanOf(cur()));
    throw SyntaxAbort{};
  }

  // Reports at the current token WITHOUT aborting — for value-validation
  // errors (a bad latency, a non-positive depth) where the surrounding
  // syntax is intact and parsing can continue with a clamped value. Keeps
  // one mistake from cascading into bogus errors on the following lines.
  void softFail(const char* code, const std::string& msg) const {
    de_.error(code, msg, spanOf(cur()));
  }

  // Panic-mode sync: consume to the end of the current logical line,
  // skipping over (balanced) nested blocks so recovery never resumes in
  // the middle of a child block.
  void syncToLineEnd() {
    int depth = 0;
    for (;;) {
      switch (cur().kind) {
        case TokKind::Eof:
          return;
        case TokKind::Newline:
          advance();
          if (depth == 0) return;
          break;
        case TokKind::Indent:
          depth++;
          advance();
          break;
        case TokKind::Dedent:
          if (depth == 0) return;  // leave it for the enclosing loop
          depth--;
          advance();
          break;
        default:
          advance();
          break;
      }
    }
  }

  // After a broken header line, its body block (if any) is unusable: skip
  // the whole balanced Indent..Dedent region.
  void skipBlockIfIndent() {
    if (cur().kind != TokKind::Indent) return;
    int depth = 0;
    for (;;) {
      switch (cur().kind) {
        case TokKind::Eof:
          return;
        case TokKind::Indent:
          depth++;
          advance();
          break;
        case TokKind::Dedent:
          advance();
          if (--depth == 0) return;
          break;
        default:
          advance();
          break;
      }
    }
  }

  bool atIdent(const std::string& text) const {
    return cur().kind == TokKind::Ident && cur().text == text;
  }
  bool atPunct(const std::string& text) const {
    return cur().kind == TokKind::Punct && cur().text == text;
  }
  bool atDedent() const { return cur().kind == TokKind::Dedent || cur().kind == TokKind::Eof; }

  bool acceptIdent(const std::string& text) {
    if (!atIdent(text)) return false;
    advance();
    return true;
  }
  bool acceptPunct(const std::string& text) {
    if (!atPunct(text)) return false;
    advance();
    return true;
  }

  void expectIdent(const std::string& text) {
    if (!acceptIdent(text))
      fail("E0201", "expected '" + text + "', got " + describe(cur()));
  }
  void expectPunct(const std::string& text) {
    if (!acceptPunct(text))
      fail("E0201", "expected '" + text + "', got " + describe(cur()));
  }
  std::string expectAnyIdent() {
    if (cur().kind != TokKind::Ident)
      fail("E0201", "expected identifier, got " + describe(cur()));
    std::string t = cur().text;
    advance();
    return t;
  }
  int64_t expectInt() {
    if (cur().kind != TokKind::IntLit)
      fail("E0201", "expected integer, got " + describe(cur()));
    int64_t v = cur().intValue;
    advance();
    return v;
  }
  std::string expectString() {
    if (cur().kind != TokKind::StringLit)
      fail("E0201", "expected string literal, got " + describe(cur()));
    std::string t = cur().text;
    advance();
    return t;
  }
  void expectNewline() {
    if (cur().kind != TokKind::Newline)
      fail("E0201", "expected end of line, got " + describe(cur()));
    advance();
  }
  void expectIndent() {
    if (cur().kind != TokKind::Indent) fail("E0201", "expected indented block");
    advance();
  }
  void expectDedent() {
    if (cur().kind != TokKind::Dedent) fail("E0201", "expected dedent");
    advance();
  }

  // Stamp the source anchor of the token that began the construct.
  template <typename NodePtr>
  NodePtr anchored(NodePtr node, const Token& at) const {
    node->line = at.line;
    node->col = at.col;
    return node;
  }

  // --- grammar productions ---

  std::unique_ptr<Module> parseModule() {
    expectIdent("module");
    auto mod = std::make_unique<Module>();
    mod->name = expectAnyIdent();
    expectPunct(":");
    expectNewline();
    expectIndent();
    while (atIdent("input") || atIdent("output")) {
      try {
        Port p;
        p.dir = acceptIdent("input") ? PortDir::Input : (expectIdent("output"), PortDir::Output);
        p.name = expectAnyIdent();
        expectPunct(":");
        p.type = parseType();
        expectNewline();
        mod->ports.push_back(std::move(p));
      } catch (const SyntaxAbort&) {
        syncToLineEnd();
      }
    }
    while (!atDedent() && !de_.atErrorLimit()) {
      try {
        mod->body.push_back(parseStmt());
      } catch (const SyntaxAbort&) {
        syncToLineEnd();
      }
    }
    if (atDedent()) advance();
    return mod;
  }

  Type parseType() {
    Type t = parseBaseType();
    // Vector suffixes bind left-to-right: UInt<8>[4][2] is a 2-vector of
    // 4-vectors of UInt<8>.
    while (atPunct("[")) {
      advance();
      int64_t n = expectInt();
      if (n <= 0) fail("E0204", "vector size must be positive");
      expectPunct("]");
      t = Type::vector(std::move(t), static_cast<uint32_t>(n));
    }
    return t;
  }

  Type parseBaseType() {
    if (acceptIdent("Clock")) return Type::clock();
    if (acceptIdent("Reset")) return Type::reset();
    if (acceptIdent("AsyncReset")) return {TypeKind::AsyncReset, 1, true, nullptr, nullptr, 0};
    if (acceptPunct("{")) {
      std::vector<Field> fields;
      if (!atPunct("}")) {
        while (true) {
          Field f;
          f.flip = acceptIdent("flip");
          f.name = expectAnyIdent();
          expectPunct(":");
          f.type = parseType();
          fields.push_back(std::move(f));
          if (!acceptPunct(",")) break;
        }
      }
      expectPunct("}");
      return Type::bundle(std::move(fields));
    }
    bool isSigned;
    if (acceptIdent("UInt")) isSigned = false;
    else if (acceptIdent("SInt")) isSigned = true;
    else fail("E0201", "expected type, got " + describe(cur()));
    Type t;
    t.kind = isSigned ? TypeKind::SInt : TypeKind::UInt;
    if (acceptPunct("<")) {
      int64_t w = expectInt();
      if (w < 0) fail("E0204", "negative width");
      t.width = static_cast<uint32_t>(w);
      t.widthKnown = true;
      expectPunct(">");
    }
    return t;
  }

  StmtPtr parseStmt() {
    const Token& at = cur();
    if (atIdent("wire") && peekTok().kind == TokKind::Ident)
      return anchored(parseWire(), at);
    if (atIdent("node") && peekTok().kind == TokKind::Ident)
      return anchored(parseNode(), at);
    if (atIdent("reg") && peekTok().kind == TokKind::Ident)
      return anchored(parseReg(), at);
    if (atIdent("mem") && peekTok().kind == TokKind::Ident)
      return anchored(parseMem(), at);
    if (atIdent("inst") && peekTok().kind == TokKind::Ident)
      return anchored(parseInst(), at);
    if (atIdent("when")) return anchored(parseWhen(), at);
    if (atIdent("printf") && peekTok().kind == TokKind::Punct && peekTok().text == "(")
      return anchored(parsePrintf(), at);
    if (atIdent("stop") && peekTok().kind == TokKind::Punct && peekTok().text == "(")
      return anchored(parseStop(), at);
    if (atIdent("assert") && peekTok().kind == TokKind::Punct && peekTok().text == "(")
      return anchored(parseAssert(), at);
    if (atIdent("skip")) {
      advance();
      expectNewline();
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::Skip;
      return anchored(std::move(s), at);
    }
    if (cur().kind != TokKind::Ident)
      fail("E0202", "expected a statement, got " + describe(cur()));
    // Otherwise: connect or invalidate, both starting with a reference path.
    std::string target = parseRefPath();
    if (acceptIdent("is")) {
      expectIdent("invalid");
      expectNewline();
      return anchored(makeInvalidate(std::move(target)), at);
    }
    if (!acceptPunct("<=") && !acceptPunct("<-"))
      fail("E0201", "expected '<=' in connect to '" + target + "', got " + describe(cur()));
    ExprPtr rhs = parseExpr();
    expectNewline();
    return anchored(makeConnect(std::move(target), std::move(rhs)), at);
  }

  StmtPtr parseWire() {
    expectIdent("wire");
    std::string name = expectAnyIdent();
    expectPunct(":");
    Type t = parseType();
    expectNewline();
    return makeWire(std::move(name), t);
  }

  StmtPtr parseNode() {
    expectIdent("node");
    std::string name = expectAnyIdent();
    expectPunct("=");
    ExprPtr value = parseExpr();
    expectNewline();
    return makeNode(std::move(name), std::move(value));
  }

  StmtPtr parseReg() {
    expectIdent("reg");
    std::string name = expectAnyIdent();
    expectPunct(":");
    Type t = parseType();
    expectPunct(",");
    ExprPtr clock = parseExpr();
    ExprPtr resetCond, resetInit;
    if (acceptIdent("with")) {
      expectPunct(":");
      auto parseResetClause = [&] {
        expectIdent("reset");
        expectPunct("=>");
        expectPunct("(");
        resetCond = parseExpr();
        expectPunct(",");
        resetInit = parseExpr();
        expectPunct(")");
      };
      if (acceptPunct("(")) {
        // Inline form: with : (reset => (cond, init))
        parseResetClause();
        expectPunct(")");
        expectNewline();
      } else {
        // Block form (as emitted by Chisel):
        //   reg x : UInt<8>, clock with :
        //     reset => (reset, UInt<8>(0))
        expectNewline();
        expectIndent();
        if (acceptPunct("(")) {
          parseResetClause();
          expectPunct(")");
        } else {
          parseResetClause();
        }
        expectNewline();
        expectDedent();
      }
      return makeReg(std::move(name), t, std::move(clock), std::move(resetCond),
                     std::move(resetInit));
    }
    expectNewline();
    return makeReg(std::move(name), t, std::move(clock), std::move(resetCond),
                   std::move(resetInit));
  }

  StmtPtr parseMem() {
    expectIdent("mem");
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Mem;
    s->name = expectAnyIdent();
    expectPunct(":");
    expectNewline();
    expectIndent();
    bool sawType = false, sawDepth = false;
    while (!atDedent()) {
      std::string field = expectAnyIdent();
      expectPunct("=>");
      if (field == "data-type") {
        s->type = parseType();
        if ((s->type.kind == TypeKind::UInt || s->type.kind == TypeKind::SInt) &&
            !s->type.widthKnown)
          fail("E0203", "mem data-type must have an explicit width");
        sawType = true;
      } else if (field == "depth") {
        int64_t d = expectInt();
        if (d <= 0) {
          softFail("E0204", "mem depth must be positive");
          d = 1;
        }
        s->depth = static_cast<uint64_t>(d);
        sawDepth = true;
      } else if (field == "read-latency") {
        int64_t rl = expectInt();
        if (rl < 0 || rl > 1) {
          softFail("E0208", "read-latency must be 0 or 1");
          rl = 0;
        }
        s->readLatency = static_cast<uint32_t>(rl);
      } else if (field == "write-latency") {
        if (expectInt() != 1) softFail("E0208", "write-latency must be 1");
        s->writeLatency = 1;
      } else if (field == "read-under-write") {
        expectAnyIdent();  // undefined/old/new — all treated as 'old'
      } else if (field == "reader") {
        s->readers.push_back(MemPort{expectAnyIdent()});
      } else if (field == "writer") {
        s->writers.push_back(MemPort{expectAnyIdent()});
      } else {
        fail("E0203", "unknown mem field '" + field + "'");
      }
      expectNewline();
    }
    expectDedent();
    if (!sawType || !sawDepth)
      fail("E0203", "mem '" + s->name + "' missing data-type or depth");
    return s;
  }

  StmtPtr parseInst() {
    expectIdent("inst");
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Inst;
    s->name = expectAnyIdent();
    expectIdent("of");
    s->moduleName = expectAnyIdent();
    expectNewline();
    return s;
  }

  StmtPtr parseWhen() {
    expectIdent("when");
    ExprPtr cond = parseExpr();
    expectPunct(":");
    expectNewline();
    expectIndent();
    std::vector<StmtPtr> thenBody;
    while (!atDedent() && !de_.atErrorLimit()) {
      try {
        thenBody.push_back(parseStmt());
      } catch (const SyntaxAbort&) {
        syncToLineEnd();
      }
    }
    expectDedent();
    std::vector<StmtPtr> elseBody;
    if (atIdent("else")) {
      advance();
      if (atIdent("when")) {
        // `else when ...` chains as a nested when in the else body.
        elseBody.push_back(parseWhen());
      } else {
        expectPunct(":");
        expectNewline();
        expectIndent();
        while (!atDedent() && !de_.atErrorLimit()) {
          try {
            elseBody.push_back(parseStmt());
          } catch (const SyntaxAbort&) {
            syncToLineEnd();
          }
        }
        expectDedent();
      }
    }
    return makeWhen(std::move(cond), std::move(thenBody), std::move(elseBody));
  }

  StmtPtr parsePrintf() {
    expectIdent("printf");
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Printf;
    expectPunct("(");
    s->clock = parseExpr();
    expectPunct(",");
    s->expr = parseExpr();  // enable condition
    expectPunct(",");
    s->format = expectString();
    while (acceptPunct(",")) s->printArgs.push_back(parseExpr());
    expectPunct(")");
    expectNewline();
    return s;
  }

  StmtPtr parseStop() {
    expectIdent("stop");
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Stop;
    expectPunct("(");
    s->clock = parseExpr();
    expectPunct(",");
    s->expr = parseExpr();  // enable condition
    expectPunct(",");
    s->exitCode = static_cast<int>(expectInt());
    expectPunct(")");
    expectNewline();
    return s;
  }

  StmtPtr parseAssert() {
    // assert(clock, predicate, enable, "message")
    expectIdent("assert");
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Assert;
    expectPunct("(");
    s->clock = parseExpr();
    expectPunct(",");
    s->pred = parseExpr();
    expectPunct(",");
    s->expr = parseExpr();  // enable
    expectPunct(",");
    s->format = expectString();
    expectPunct(")");
    expectNewline();
    return s;
  }

  std::string parseRefPath() {
    std::string path = expectAnyIdent();
    while (atPunct(".") || atPunct("[")) {
      if (acceptPunct(".")) {
        if (cur().kind == TokKind::Ident) {
          path += ".";
          path += expectAnyIdent();
        } else if (cur().kind == TokKind::IntLit) {
          path += ".";
          path += std::to_string(expectInt());
        } else {
          fail("E0201", "expected field name after '.'");
        }
      } else {
        // Constant vector subindex: x[3] is canonicalized to x.3. Dynamic
        // subaccess (x[expr]) is out of scope and rejected here.
        advance();
        if (cur().kind != TokKind::IntLit)
          fail("E0205", "dynamic subaccess (x[expr]) is unsupported; use a mux tree");
        path += ".";
        path += std::to_string(expectInt());
        expectPunct("]");
      }
    }
    return path;
  }

  ExprPtr parseExpr() {
    const Token& at = cur();
    if (atIdent("UInt") || atIdent("SInt")) return anchored(parseLiteral(), at);
    if (atIdent("mux") && peekTok().kind == TokKind::Punct && peekTok().text == "(") {
      advance();
      advance();
      ExprPtr sel = parseExpr();
      expectPunct(",");
      ExprPtr tval = parseExpr();
      expectPunct(",");
      ExprPtr fval = parseExpr();
      expectPunct(")");
      return anchored(Expr::mux(std::move(sel), std::move(tval), std::move(fval)), at);
    }
    if (atIdent("validif") && peekTok().kind == TokKind::Punct && peekTok().text == "(") {
      advance();
      advance();
      ExprPtr cond = parseExpr();
      expectPunct(",");
      ExprPtr value = parseExpr();
      expectPunct(")");
      return anchored(Expr::validIf(std::move(cond), std::move(value)), at);
    }
    if (cur().kind == TokKind::Ident && peekTok().kind == TokKind::Punct &&
        peekTok().text == "(") {
      PrimOpKind op;
      if (primOpFromName(cur().text, &op)) {
        advance();
        advance();
        std::vector<ExprPtr> args;
        std::vector<int64_t> consts;
        int wantExprs = primOpExprArity(op);
        int wantConsts = primOpConstArity(op);
        for (int k = 0; k < wantExprs; k++) {
          if (k) expectPunct(",");
          args.push_back(parseExpr());
        }
        for (int k = 0; k < wantConsts; k++) {
          expectPunct(",");
          consts.push_back(expectInt());
        }
        expectPunct(")");
        return anchored(Expr::prim(op, std::move(args), std::move(consts)), at);
      }
    }
    if (cur().kind == TokKind::Ident) return anchored(Expr::ref(parseRefPath()), at);
    fail("E0202", "expected expression, got " + describe(cur()));
  }

  ExprPtr parseLiteral() {
    bool isSigned = atIdent("SInt");
    advance();
    bool widthKnown = false;
    uint32_t width = 0;
    if (acceptPunct("<")) {
      int64_t w = expectInt();
      if (w < 0) fail("E0204", "negative literal width");
      width = static_cast<uint32_t>(w);
      widthKnown = true;
      expectPunct(">");
    }
    expectPunct("(");
    BitVec value;
    if (cur().kind == TokKind::StringLit) {
      const Token& litTok = cur();
      std::string s = expectString();
      if (s.empty()) failAt("E0207", "empty literal string", litTok);
      char base = s[0];
      std::string digits = s.substr(1);
      bool negate = false;
      if (!digits.empty() && (digits[0] == '-' || digits[0] == '+')) {
        negate = digits[0] == '-';
        digits = digits.substr(1);
      }
      uint32_t w = widthKnown ? width : 1024;  // parse wide, size below
      if (base == 'h') {
        for (char d : digits)
          if (!isxdigit(static_cast<unsigned char>(d)) && d != '_')
            failAt("E0207", "bad hex digit in literal", litTok);
        value = BitVec::fromHexString(w, digits);
      } else if (base == 'b') {
        value = BitVec(w);
        uint32_t pos = 0;
        for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
          if (*it == '_') continue;
          if (*it != '0' && *it != '1') failAt("E0207", "bad binary digit", litTok);
          value.setBit(pos++, *it == '1');
        }
      } else if (base == 'o') {
        value = BitVec(w);
        uint32_t pos = 0;
        for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
          if (*it == '_') continue;
          if (*it < '0' || *it > '7') failAt("E0207", "bad octal digit", litTok);
          uint64_t oct = static_cast<uint64_t>(*it - '0');
          for (int b = 0; b < 3; b++) value.setBit(pos + b, (oct >> b) & 1);
          pos += 3;
        }
      } else if (base == 'd' || (base >= '0' && base <= '9')) {
        std::string dec = base == 'd' ? digits : s;
        for (char d : dec)
          if (!isDecDigit(d)) failAt("E0207", "bad decimal digit in literal", litTok);
        value = BitVec::fromDecString(w, dec);
      } else {
        failAt("E0207", std::string("unknown literal base '") + base + "'", litTok);
      }
      if (negate) {
        value = bvops::extend(bvops::sub(BitVec(w), value, false), false, w);
      }
      if (!widthKnown) {
        width = value.bitLength();
        if (isSigned) width += 1;
        if (width == 0) width = 1;
        value = bvops::extend(value, false, width);
      } else {
        value = bvops::extend(value, false, width);
      }
    } else {
      int64_t v = expectInt();
      if (!widthKnown) {
        uint64_t mag = v < 0 ? static_cast<uint64_t>(-v) : static_cast<uint64_t>(v);
        uint32_t bits = 0;
        while (mag >> bits) bits++;
        width = isSigned ? bits + 1 : (bits == 0 ? 1 : bits);
      }
      value = BitVec::fromI64(width, v);
    }
    expectPunct(")");
    return isSigned ? Expr::sintLit(width, std::move(value))
                    : Expr::uintLit(width, std::move(value));
  }

  static bool isDecDigit(char c) { return (c >= '0' && c <= '9') || c == '_'; }

  [[noreturn]] void failAt(const char* code, const std::string& msg, const Token& t) const {
    de_.error(code, msg, spanOf(t));
    throw SyntaxAbort{};
  }
};

}  // namespace

std::unique_ptr<Circuit> parseCircuit(const std::string& source, diag::DiagEngine& de) {
  Parser p(lex(source, de), de);
  return p.parseCircuit();
}

std::unique_ptr<Circuit> parseCircuit(const std::string& source) {
  diag::DiagEngine de;
  std::unique_ptr<Circuit> c = parseCircuit(source, de);
  if (de.hasErrors()) {
    for (const diag::Diagnostic& d : de.diagnostics()) {
      if (d.severity != diag::Severity::Error) continue;
      if (d.code.size() >= 3 && d.code[0] == 'E' && d.code[1] == '0' && d.code[2] == '1')
        throw LexError(d.message, d.span.line);
      throw ParseError(d.message, d.span.line);
    }
  }
  return c;
}

}  // namespace essent::firrtl
