// Indentation-aware lexer for FIRRTL source text.
//
// FIRRTL delimits blocks by indentation (like Python). The lexer emits
// synthetic Indent/Dedent tokens at indentation changes and a Newline token
// at the end of every non-empty line, which lets the parser be a plain
// recursive-descent parser. `;` starts a line comment; `@[...]` source
// locators are consumed and dropped.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace essent::firrtl {

enum class TokKind {
  Ident,      // identifiers and keywords (keywords resolved by the parser)
  IntLit,     // decimal integer, possibly negative
  StringLit,  // double-quoted, escapes resolved
  Punct,      // one of ( ) < > [ ] { } , . : = and the digraphs <= => <-
  Indent,
  Dedent,
  Newline,
  Eof,
};

struct Token {
  TokKind kind;
  std::string text;  // ident spelling / punct spelling / string contents
  int64_t intValue = 0;
  int line = 0;
  int col = 0;
};

class LexError : public std::runtime_error {
 public:
  LexError(const std::string& msg, int line)
      : std::runtime_error("firrtl lex error (line " + std::to_string(line) + "): " + msg) {}
};

// Tokenizes the whole input; throws LexError on malformed text.
std::vector<Token> lex(const std::string& source);

}  // namespace essent::firrtl
