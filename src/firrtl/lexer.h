// Indentation-aware lexer for FIRRTL source text.
//
// FIRRTL delimits blocks by indentation (like Python). The lexer emits
// synthetic Indent/Dedent tokens at indentation changes and a Newline token
// at the end of every non-empty line, which lets the parser be a plain
// recursive-descent parser. `;` starts a line comment; `@[...]` source
// locators are consumed and dropped.
//
// Two entry points: the diagnostic-collecting lex(source, engine) recovers
// from every lexical error (skipping the offending character, terminating a
// runaway string at the line end, realigning a bad dedent) so a single pass
// reports them all; the legacy lex(source) wrapper throws LexError on the
// first error for callers that want the old contract.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "diag/diag.h"

namespace essent::firrtl {

enum class TokKind {
  Ident,      // identifiers and keywords (keywords resolved by the parser)
  IntLit,     // decimal integer, possibly negative
  StringLit,  // double-quoted, escapes resolved
  Punct,      // one of ( ) < > [ ] { } , . : = and the digraphs <= => <-
  Indent,
  Dedent,
  Newline,
  Eof,
};

struct Token {
  TokKind kind;
  std::string text;  // ident spelling / punct spelling / string contents
  int64_t intValue = 0;
  int line = 0;
  int col = 0;
};

class LexError : public std::runtime_error {
 public:
  LexError(const std::string& msg, int line)
      : std::runtime_error("firrtl lex error (line " + std::to_string(line) + "): " + msg) {}
};

// Tokenizes the whole input, reporting malformed text through `de` (codes
// E0101-E0105) and recovering; the returned token stream is always
// parseable in shape (balanced Indent/Dedent, terminated by Eof).
std::vector<Token> lex(const std::string& source, diag::DiagEngine& de);

// Legacy contract: throws LexError carrying the first diagnostic.
std::vector<Token> lex(const std::string& source);

}  // namespace essent::firrtl
