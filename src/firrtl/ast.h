// AST for the FIRRTL subset consumed by this ESSENT reproduction.
//
// The subset is "lowered" (scalar) FIRRTL plus the structured features the
// tool flow itself removes: module instances (flattened by a pass),
// when/else blocks (expanded to muxes), registers with reset, and `mem`
// blocks. Aggregate types are out of scope except for the implicit bundles
// of memory and instance ports, which appear as dotted reference names
// ("m.r.addr", "core.out") and are resolved by the flattening passes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/bitvec.h"

namespace essent::firrtl {

// ---------------------------------------------------------------------------
// Types

enum class TypeKind { UInt, SInt, Clock, Reset, AsyncReset, Bundle, Vector };

struct Field;

struct Type {
  TypeKind kind = TypeKind::UInt;
  uint32_t width = 0;
  bool widthKnown = false;
  // Bundle fields / vector element (aggregates are removed by the
  // lowerAggregates pass before anything downstream of the parser sees
  // them; see passes.h).
  std::shared_ptr<std::vector<Field>> fields;  // TypeKind::Bundle
  std::shared_ptr<Type> elem;                  // TypeKind::Vector
  uint32_t size = 0;                           // TypeKind::Vector

  static Type uint_(uint32_t w) { return {TypeKind::UInt, w, true, nullptr, nullptr, 0}; }
  static Type sint(uint32_t w) { return {TypeKind::SInt, w, true, nullptr, nullptr, 0}; }
  static Type clock() { return {TypeKind::Clock, 1, true, nullptr, nullptr, 0}; }
  static Type reset() { return {TypeKind::Reset, 1, true, nullptr, nullptr, 0}; }
  static Type bundle(std::vector<Field> fs);
  static Type vector(Type elemType, uint32_t n);

  bool isGround() const { return kind != TypeKind::Bundle && kind != TypeKind::Vector; }
  bool isSigned() const { return kind == TypeKind::SInt; }
  // Clock/Reset behave as UInt<1> for simulation purposes.
  uint32_t simWidth() const { return kind == TypeKind::UInt || kind == TypeKind::SInt ? width : 1; }
  bool operator==(const Type& o) const;
  std::string toString() const;
};

struct Field {
  std::string name;
  bool flip = false;
  Type type;
};

// ---------------------------------------------------------------------------
// Expressions

enum class PrimOpKind {
  Add, Sub, Mul, Div, Rem,
  Lt, Leq, Gt, Geq, Eq, Neq,
  Pad, AsUInt, AsSInt, AsClock, AsAsyncReset,
  Shl, Shr, Dshl, Dshr,
  Cvt, Neg, Not,
  And, Or, Xor,
  Andr, Orr, Xorr,
  Cat, Bits, Head, Tail,
};

const char* primOpName(PrimOpKind op);
// Looks up a primop by its FIRRTL spelling; returns false if unknown.
bool primOpFromName(const std::string& name, PrimOpKind* out);
// Number of expression operands (1 or 2) for the op.
int primOpExprArity(PrimOpKind op);
// Number of constant (integer literal) parameters for the op.
int primOpConstArity(PrimOpKind op);

enum class ExprKind { Ref, UIntLit, SIntLit, Mux, ValidIf, Prim };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;

  // Ref: possibly dotted ("inst.port", "mem.r.data").
  std::string name;

  // Literals.
  BitVec value;
  uint32_t litWidth = 0;

  // Mux / ValidIf / Prim operands.
  PrimOpKind op = PrimOpKind::Add;
  std::vector<ExprPtr> args;
  std::vector<int64_t> consts;

  // Filled in by width inference.
  Type type;

  // Source anchor (1-based; 0 = synthesized). Set by the parser, preserved
  // by clone() so diagnostics from later passes still point into the file.
  int line = 0;
  int col = 0;

  static ExprPtr ref(std::string n);
  static ExprPtr uintLit(uint32_t width, BitVec v);
  static ExprPtr sintLit(uint32_t width, BitVec v);
  static ExprPtr mux(ExprPtr sel, ExprPtr tval, ExprPtr fval);
  static ExprPtr validIf(ExprPtr cond, ExprPtr value);
  static ExprPtr prim(PrimOpKind op, std::vector<ExprPtr> args, std::vector<int64_t> consts);

  ExprPtr clone() const;
  std::string toString() const;
};

// ---------------------------------------------------------------------------
// Statements

enum class StmtKind {
  Wire, Node, Reg, Mem, Inst, Connect, Invalidate, When, Printf, Stop, Assert, Skip,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct MemPort {
  std::string name;
};

struct Stmt {
  StmtKind kind = StmtKind::Skip;

  std::string name;   // declared name / connect target / invalidate target
  Type type;          // wire/reg type, mem data type

  ExprPtr expr;       // node value, connect rhs, when/assert enable condition
  ExprPtr clock;      // reg/printf/stop/assert clock
  ExprPtr pred;       // assert predicate
  ExprPtr resetCond;  // reg reset condition (null when no reset)
  ExprPtr resetInit;  // reg reset value

  // Mem fields.
  uint64_t depth = 0;
  uint32_t readLatency = 0;
  uint32_t writeLatency = 1;
  std::vector<MemPort> readers;
  std::vector<MemPort> writers;

  // Inst.
  std::string moduleName;

  // When.
  std::vector<StmtPtr> thenBody;
  std::vector<StmtPtr> elseBody;

  // Printf / Stop / Assert (format doubles as the assert message).
  std::string format;
  std::vector<ExprPtr> printArgs;
  int exitCode = 0;

  // Source anchor (1-based; 0 = synthesized), preserved by clone() and by
  // the lowering passes so width diagnostics carry a usable location.
  int line = 0;
  int col = 0;

  StmtPtr clone() const;
};

StmtPtr makeWire(std::string name, Type t);
StmtPtr makeNode(std::string name, ExprPtr value);
StmtPtr makeReg(std::string name, Type t, ExprPtr clock, ExprPtr resetCond, ExprPtr resetInit);
StmtPtr makeConnect(std::string target, ExprPtr value);
StmtPtr makeInvalidate(std::string target);
StmtPtr makeWhen(ExprPtr cond, std::vector<StmtPtr> thenBody, std::vector<StmtPtr> elseBody);

// ---------------------------------------------------------------------------
// Modules and circuits

enum class PortDir { Input, Output };

struct Port {
  std::string name;
  PortDir dir = PortDir::Input;
  Type type;
};

struct Module {
  std::string name;
  std::vector<Port> ports;
  std::vector<StmtPtr> body;

  const Port* findPort(const std::string& n) const;
};

struct Circuit {
  std::string name;  // must match the name of the main module
  std::vector<std::unique_ptr<Module>> modules;

  Module* findModule(const std::string& n) const;
  Module* mainModule() const { return findModule(name); }
};

}  // namespace essent::firrtl
