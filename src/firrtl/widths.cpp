#include "firrtl/widths.h"

#include <optional>

#include "support/bvops.h"
#include "support/strutil.h"

namespace essent::firrtl {

uint32_t memAddrWidth(uint64_t depth) {
  uint32_t w = 1;
  while ((uint64_t{1} << w) < depth) w++;
  return w;
}

void SymbolTable::define(const std::string& name, Type type) {
  if (!table_.emplace(name, type).second)
    throw WidthError("duplicate definition of '" + name + "'");
}

bool SymbolTable::tryDefine(const std::string& name, Type type) {
  return table_.emplace(name, type).second;
}

Type SymbolTable::lookup(const std::string& name) const {
  auto it = table_.find(name);
  if (it == table_.end()) throw WidthError("reference to undefined signal '" + name + "'");
  return it->second;
}

namespace {

void collectDecls(const std::vector<StmtPtr>& body, SymbolTable& st) {
  for (const auto& s : body) {
    switch (s->kind) {
      case StmtKind::Wire:
      case StmtKind::Reg:
        if (!s->type.isGround())
          throw WidthError("aggregate-typed '" + s->name + "' survived lowering; run "
                           "lowerAggregates first");
        st.define(s->name, s->type);
        break;
      case StmtKind::Node:
        // Node types are resolved during inference; placeholder defined later.
        break;
      case StmtKind::Mem: {
        uint32_t aw = memAddrWidth(s->depth);
        for (const auto& r : s->readers) {
          st.define(s->name + "." + r.name + ".addr", Type::uint_(aw));
          st.define(s->name + "." + r.name + ".en", Type::uint_(1));
          st.define(s->name + "." + r.name + ".clk", Type::clock());
          st.define(s->name + "." + r.name + ".data", s->type);
        }
        for (const auto& w : s->writers) {
          st.define(s->name + "." + w.name + ".addr", Type::uint_(aw));
          st.define(s->name + "." + w.name + ".en", Type::uint_(1));
          st.define(s->name + "." + w.name + ".clk", Type::clock());
          st.define(s->name + "." + w.name + ".data", s->type);
          st.define(s->name + "." + w.name + ".mask", Type::uint_(1));
        }
        break;
      }
      case StmtKind::Inst:
        throw WidthError("instance '" + s->name + "' present; run flattenInstances first");
      case StmtKind::When:
        collectDecls(s->thenBody, st);
        collectDecls(s->elseBody, st);
        break;
      default:
        break;
    }
  }
}

bool isIntLike(const Type& t) {
  return t.kind == TypeKind::UInt || t.kind == TypeKind::SInt ||
         t.kind == TypeKind::Reset || t.kind == TypeKind::AsyncReset;
}

// Reset/AsyncReset participate in logic as UInt<1>.
Type asIntType(const Type& t) {
  if (t.kind == TypeKind::Reset || t.kind == TypeKind::AsyncReset) return Type::uint_(1);
  return t;
}

void requireIntLike(const Type& t, const char* what) {
  if (!isIntLike(t)) throw WidthError(strfmt("%s must be an integer type, got %s", what, t.toString().c_str()));
}

void requireSameSign(const Type& a, const Type& b, const char* what) {
  if (a.isSigned() != b.isSigned())
    throw WidthError(strfmt("%s requires operands of matching signedness (%s vs %s)", what,
                            a.toString().c_str(), b.toString().c_str()));
}

diag::SourceSpan stmtSpan(const Stmt& s) {
  diag::SourceSpan sp;
  sp.line = s.line;
  sp.col = s.col;
  return sp;
}

// WidthError::what() prepends a fixed prefix; diagnostics carry their own
// severity/code, so strip it when re-reporting.
std::string stripWidthPrefix(const char* what) {
  std::string m = what;
  const std::string pfx = "firrtl width error: ";
  if (m.rfind(pfx, 0) == 0) m = m.substr(pfx.size());
  return m;
}

void collectDeclsDiag(const std::vector<StmtPtr>& body, SymbolTable& st, diag::DiagEngine& de) {
  for (const auto& s : body) {
    switch (s->kind) {
      case StmtKind::Wire:
      case StmtKind::Reg:
        if (!s->type.isGround()) {
          de.error("E0304",
                   "aggregate-typed '" + s->name + "' survived lowering; run lowerAggregates first",
                   stmtSpan(*s));
          break;
        }
        if (!st.tryDefine(s->name, s->type))
          de.error("E0301", "duplicate definition of '" + s->name + "'", stmtSpan(*s));
        break;
      case StmtKind::Node:
        break;
      case StmtKind::Mem: {
        uint32_t aw = memAddrWidth(s->depth);
        bool dup = false;
        for (const auto& r : s->readers) {
          dup |= !st.tryDefine(s->name + "." + r.name + ".addr", Type::uint_(aw));
          st.tryDefine(s->name + "." + r.name + ".en", Type::uint_(1));
          st.tryDefine(s->name + "." + r.name + ".clk", Type::clock());
          st.tryDefine(s->name + "." + r.name + ".data", s->type);
        }
        for (const auto& w : s->writers) {
          dup |= !st.tryDefine(s->name + "." + w.name + ".addr", Type::uint_(aw));
          st.tryDefine(s->name + "." + w.name + ".en", Type::uint_(1));
          st.tryDefine(s->name + "." + w.name + ".clk", Type::clock());
          st.tryDefine(s->name + "." + w.name + ".data", s->type);
          st.tryDefine(s->name + "." + w.name + ".mask", Type::uint_(1));
        }
        if (dup)
          de.error("E0301", "duplicate mem port on '" + s->name + "'", stmtSpan(*s));
        break;
      }
      case StmtKind::Inst:
        de.error("E0304", "instance '" + s->name + "' present; run flattenInstances first",
                 stmtSpan(*s));
        break;
      case StmtKind::When:
        collectDeclsDiag(s->thenBody, st, de);
        collectDeclsDiag(s->elseBody, st, de);
        break;
      default:
        break;
    }
  }
}

}  // namespace

SymbolTable SymbolTable::build(const Module& module) {
  SymbolTable st;
  for (const auto& p : module.ports) st.define(p.name, p.type);
  collectDecls(module.body, st);
  return st;
}

SymbolTable SymbolTable::build(const Module& module, diag::DiagEngine& de) {
  SymbolTable st;
  for (const auto& p : module.ports) {
    if (!st.tryDefine(p.name, p.type))
      de.error("E0301", "duplicate port '" + p.name + "'", {});
  }
  collectDeclsDiag(module.body, st, de);
  return st;
}

Type inferExprType(Expr& e, const SymbolTable& st) {
  switch (e.kind) {
    case ExprKind::Ref:
      e.type = st.lookup(e.name);
      return e.type;
    case ExprKind::UIntLit:
      e.type = Type::uint_(e.litWidth);
      return e.type;
    case ExprKind::SIntLit:
      e.type = Type::sint(e.litWidth);
      return e.type;
    case ExprKind::Mux: {
      Type sel = asIntType(inferExprType(*e.args[0], st));
      requireIntLike(sel, "mux selector");
      Type tv = asIntType(inferExprType(*e.args[1], st));
      Type fv = asIntType(inferExprType(*e.args[2], st));
      requireIntLike(tv, "mux operand");
      requireIntLike(fv, "mux operand");
      requireSameSign(tv, fv, "mux");
      e.type = tv.isSigned() ? Type::sint(std::max(tv.width, fv.width))
                             : Type::uint_(std::max(tv.width, fv.width));
      return e.type;
    }
    case ExprKind::ValidIf: {
      Type cond = asIntType(inferExprType(*e.args[0], st));
      requireIntLike(cond, "validif condition");
      Type val = inferExprType(*e.args[1], st);
      e.type = val;
      return e.type;
    }
    case ExprKind::Prim:
      break;
  }

  // Primitive operations.
  std::vector<Type> at;
  for (auto& a : e.args) at.push_back(asIntType(inferExprType(*a, st)));
  auto c = [&](size_t i) { return e.consts[i]; };
  using K = PrimOpKind;
  switch (e.op) {
    case K::Add:
    case K::Sub:
      requireIntLike(at[0], "add/sub operand");
      requireSameSign(at[0], at[1], "add/sub");
      e.type = at[0].isSigned() ? Type::sint(bvops::addWidth(at[0].width, at[1].width))
                                : Type::uint_(bvops::addWidth(at[0].width, at[1].width));
      break;
    case K::Mul:
      requireSameSign(at[0], at[1], "mul");
      e.type = at[0].isSigned() ? Type::sint(bvops::mulWidth(at[0].width, at[1].width))
                                : Type::uint_(bvops::mulWidth(at[0].width, at[1].width));
      break;
    case K::Div:
      requireSameSign(at[0], at[1], "div");
      e.type = at[0].isSigned()
                   ? Type::sint(bvops::divWidth(at[0].width, at[1].width, true))
                   : Type::uint_(bvops::divWidth(at[0].width, at[1].width, false));
      break;
    case K::Rem:
      requireSameSign(at[0], at[1], "rem");
      e.type = at[0].isSigned() ? Type::sint(bvops::remWidth(at[0].width, at[1].width))
                                : Type::uint_(bvops::remWidth(at[0].width, at[1].width));
      break;
    case K::Lt:
    case K::Leq:
    case K::Gt:
    case K::Geq:
    case K::Eq:
    case K::Neq:
      requireSameSign(at[0], at[1], "comparison");
      e.type = Type::uint_(1);
      break;
    case K::Pad:
      e.type = at[0].isSigned()
                   ? Type::sint(bvops::padWidth(at[0].width, static_cast<uint32_t>(c(0))))
                   : Type::uint_(bvops::padWidth(at[0].width, static_cast<uint32_t>(c(0))));
      break;
    case K::AsUInt:
      e.type = Type::uint_(at[0].width);
      break;
    case K::AsSInt:
      e.type = Type::sint(at[0].width);
      break;
    case K::AsClock:
      e.type = Type::clock();
      break;
    case K::AsAsyncReset:
      e.type = {TypeKind::AsyncReset, 1, true, nullptr, nullptr, 0};
      break;
    case K::Shl:
      e.type = at[0].isSigned()
                   ? Type::sint(bvops::shlWidth(at[0].width, static_cast<uint32_t>(c(0))))
                   : Type::uint_(bvops::shlWidth(at[0].width, static_cast<uint32_t>(c(0))));
      break;
    case K::Shr:
      e.type = at[0].isSigned()
                   ? Type::sint(bvops::shrWidth(at[0].width, static_cast<uint32_t>(c(0))))
                   : Type::uint_(bvops::shrWidth(at[0].width, static_cast<uint32_t>(c(0))));
      break;
    case K::Dshl:
      if (at[1].isSigned()) throw WidthError("dshl shift amount must be unsigned");
      e.type = at[0].isSigned() ? Type::sint(bvops::dshlWidth(at[0].width, at[1].width))
                                : Type::uint_(bvops::dshlWidth(at[0].width, at[1].width));
      break;
    case K::Dshr:
      if (at[1].isSigned()) throw WidthError("dshr shift amount must be unsigned");
      e.type = at[0];
      break;
    case K::Cvt:
      e.type = Type::sint(bvops::cvtWidth(at[0].width, at[0].isSigned()));
      break;
    case K::Neg:
      e.type = Type::sint(bvops::negWidth(at[0].width));
      break;
    case K::Not:
      e.type = Type::uint_(at[0].width);
      break;
    case K::And:
    case K::Or:
    case K::Xor:
      e.type = Type::uint_(bvops::bitwiseWidth(at[0].width, at[1].width));
      break;
    case K::Andr:
    case K::Orr:
    case K::Xorr:
      e.type = Type::uint_(1);
      break;
    case K::Cat:
      e.type = Type::uint_(bvops::catWidth(at[0].width, at[1].width));
      break;
    case K::Bits: {
      uint32_t hi = static_cast<uint32_t>(c(0)), lo = static_cast<uint32_t>(c(1));
      if (hi < lo || hi >= at[0].width)
        throw WidthError(strfmt("bits(%u, %u) out of range for width %u", hi, lo, at[0].width));
      e.type = Type::uint_(bvops::bitsWidth(hi, lo));
      break;
    }
    case K::Head: {
      uint32_t nb = static_cast<uint32_t>(c(0));
      if (nb > at[0].width) throw WidthError("head amount exceeds width");
      e.type = Type::uint_(bvops::headWidth(nb));
      break;
    }
    case K::Tail: {
      uint32_t nb = static_cast<uint32_t>(c(0));
      if (nb > at[0].width) throw WidthError("tail amount exceeds width");
      e.type = Type::uint_(bvops::tailWidth(at[0].width, nb));
      break;
    }
  }
  return e.type;
}

namespace {

// Single non-when statement; throws WidthError on the first problem. The
// two drivers below (throwing / diag-collecting) handle `when` recursion
// themselves so each can apply its own failure policy.
void inferOneStmt(Stmt& s, SymbolTable& st) {
  switch (s.kind) {
    case StmtKind::Node: {
      Type t = inferExprType(*s.expr, st);
      s.type = asIntType(t);
      if (t.kind == TypeKind::Clock) s.type = t;
      st.define(s.name, s.type);
      break;
    }
    case StmtKind::Reg: {
      inferExprType(*s.clock, st);
      if (s.resetCond) {
        Type rc = inferExprType(*s.resetCond, st);
        if (!isIntLike(rc)) throw WidthError("register reset condition must be 1-bit");
        inferExprType(*s.resetInit, st);
      }
      break;
    }
    case StmtKind::Connect: {
      Type lhs = st.lookup(s.name);
      Type rhs = inferExprType(*s.expr, st);
      if (lhs.kind == TypeKind::Clock) {
        if (rhs.kind != TypeKind::Clock)
          throw WidthError("cannot connect non-clock to clock '" + s.name + "'");
      } else if (!isIntLike(rhs) && rhs.kind != TypeKind::Clock) {
        throw WidthError("cannot connect clock-typed value to '" + s.name + "'");
      }
      break;
    }
    case StmtKind::Printf:
      inferExprType(*s.clock, st);
      inferExprType(*s.expr, st);
      for (auto& a : s.printArgs) inferExprType(*a, st);
      break;
    case StmtKind::Stop:
      inferExprType(*s.clock, st);
      inferExprType(*s.expr, st);
      break;
    case StmtKind::Assert:
      inferExprType(*s.clock, st);
      inferExprType(*s.pred, st);
      inferExprType(*s.expr, st);
      break;
    case StmtKind::Invalidate:
      st.lookup(s.name);
      break;
    default:
      break;
  }
}

void checkWhenCond(Stmt& s, SymbolTable& st) {
  Type cond = inferExprType(*s.expr, st);
  if (!isIntLike(cond)) throw WidthError("when condition must be 1-bit integer");
}

void inferStmts(std::vector<StmtPtr>& body, SymbolTable& st) {
  for (auto& s : body) {
    if (s->kind == StmtKind::When) {
      checkWhenCond(*s, st);
      inferStmts(s->thenBody, st);
      inferStmts(s->elseBody, st);
    } else {
      inferOneStmt(*s, st);
    }
  }
}

void inferStmtsDiag(std::vector<StmtPtr>& body, SymbolTable& st, diag::DiagEngine& de) {
  for (auto& s : body) {
    if (de.atErrorLimit()) return;
    if (s->kind == StmtKind::When) {
      try {
        checkWhenCond(*s, st);
      } catch (const WidthError& e) {
        de.error("E0303", stripWidthPrefix(e.what()), stmtSpan(*s));
      }
      // Check both bodies even when the condition was bad: their errors are
      // independent of the condition's type.
      inferStmtsDiag(s->thenBody, st, de);
      inferStmtsDiag(s->elseBody, st, de);
    } else {
      try {
        inferOneStmt(*s, st);
      } catch (const WidthError& e) {
        de.error("E0303", stripWidthPrefix(e.what()), stmtSpan(*s));
        // A node whose value failed still needs *some* type, or every later
        // reference to it cascades into "undefined signal".
        if (s->kind == StmtKind::Node) st.tryDefine(s->name, Type::uint_(1));
      }
    }
  }
}

}  // namespace

namespace {

struct WS {
  uint32_t width;
  bool sgn;
};

// Width+signedness of `e` with unknown-width refs tolerated: nullopt when
// any input width is still unresolved. Mirrors inferExprType's rules but
// runs pre-inference (expression `type` fields are not yet filled in).
std::optional<WS> tryExprWidth(const Expr& e, const SymbolTable& st) {
  auto widthOf = [&](const Expr& sub) { return tryExprWidth(sub, st); };
  switch (e.kind) {
    case ExprKind::Ref: {
      if (!st.contains(e.name)) return std::nullopt;
      Type t = st.lookup(e.name);
      if ((t.kind == TypeKind::UInt || t.kind == TypeKind::SInt) && !t.widthKnown)
        return std::nullopt;
      return WS{t.simWidth(), t.isSigned()};
    }
    case ExprKind::UIntLit:
      return WS{e.litWidth, false};
    case ExprKind::SIntLit:
      return WS{e.litWidth, true};
    case ExprKind::Mux: {
      auto a = widthOf(*e.args[1]), b = widthOf(*e.args[2]);
      if (!a || !b) return std::nullopt;
      return WS{std::max(a->width, b->width), a->sgn};
    }
    case ExprKind::ValidIf:
      return widthOf(*e.args[1]);
    case ExprKind::Prim:
      break;
  }
  std::vector<WS> w;
  for (const auto& a : e.args) {
    auto aw = widthOf(*a);
    if (!aw) return std::nullopt;
    w.push_back(*aw);
  }
  auto c = [&](size_t i) { return static_cast<uint32_t>(e.consts[i]); };
  using K = PrimOpKind;
  switch (e.op) {
    case K::Add:
    case K::Sub: return WS{bvops::addWidth(w[0].width, w[1].width), w[0].sgn};
    case K::Mul: return WS{bvops::mulWidth(w[0].width, w[1].width), w[0].sgn};
    case K::Div: return WS{bvops::divWidth(w[0].width, w[1].width, w[0].sgn), w[0].sgn};
    case K::Rem: return WS{bvops::remWidth(w[0].width, w[1].width), w[0].sgn};
    case K::Lt: case K::Leq: case K::Gt: case K::Geq: case K::Eq: case K::Neq:
      return WS{1, false};
    case K::Pad: return WS{bvops::padWidth(w[0].width, c(0)), w[0].sgn};
    case K::AsUInt: return WS{w[0].width, false};
    case K::AsSInt: return WS{w[0].width, true};
    case K::AsClock: case K::AsAsyncReset: return WS{1, false};
    case K::Shl: return WS{bvops::shlWidth(w[0].width, c(0)), w[0].sgn};
    case K::Shr: return WS{bvops::shrWidth(w[0].width, c(0)), w[0].sgn};
    case K::Dshl: return WS{bvops::dshlWidth(w[0].width, w[1].width), w[0].sgn};
    case K::Dshr: return WS{w[0].width, w[0].sgn};
    case K::Cvt: return WS{bvops::cvtWidth(w[0].width, w[0].sgn), true};
    case K::Neg: return WS{bvops::negWidth(w[0].width), true};
    case K::Not: return WS{w[0].width, false};
    case K::And: case K::Or: case K::Xor:
      return WS{bvops::bitwiseWidth(w[0].width, w[1].width), false};
    case K::Andr: case K::Orr: case K::Xorr: return WS{1, false};
    case K::Cat: return WS{bvops::catWidth(w[0].width, w[1].width), false};
    case K::Bits: return WS{bvops::bitsWidth(c(0), c(1)), false};
    case K::Head: return WS{bvops::headWidth(c(0)), false};
    case K::Tail: return WS{bvops::tailWidth(w[0].width, c(0)), false};
  }
  return std::nullopt;
}

}  // namespace

void inferUnknownWidths(Module& module) {
  // Collect the unknown-width declarations.
  auto unknownType = [](const Type& t) {
    return (t.kind == TypeKind::UInt || t.kind == TypeKind::SInt) && !t.widthKnown;
  };
  bool anyUnknown = false;
  for (const auto& p : module.ports) anyUnknown |= unknownType(p.type);
  for (const auto& s : module.body)
    if (s->kind == StmtKind::Wire || s->kind == StmtKind::Reg)
      anyUnknown |= unknownType(s->type);
  if (!anyUnknown) return;

  for (const auto& p : module.ports) {
    if (unknownType(p.type) && p.dir == PortDir::Input)
      throw WidthError("input port '" + p.name + "' must have an explicit width");
  }

  // Fixpoint: resolve any target whose single connect has a computable
  // width. Bounded by the number of unknowns.
  for (int pass = 0; pass < 64; pass++) {
    SymbolTable st = SymbolTable::build(module);
    // Nodes contribute too: define their types when computable.
    for (const auto& s : module.body) {
      if (s->kind != StmtKind::Node) continue;
      auto w = tryExprWidth(*s->expr, st);
      if (w && !st.contains(s->name))
        st.define(s->name, w->sgn ? Type::sint(w->width) : Type::uint_(w->width));
    }
    bool progress = false;
    bool remaining = false;
    auto resolve = [&](Type& t, const std::string& name) {
      if (!unknownType(t)) return;
      for (const auto& s2 : module.body) {
        if (s2->kind != StmtKind::Connect || s2->name != name) continue;
        auto w = tryExprWidth(*s2->expr, st);
        if (w) {
          t.width = w->width;
          t.widthKnown = true;
          progress = true;
          return;
        }
      }
      remaining = true;
    };
    for (auto& p : module.ports) resolve(p.type, p.name);
    for (auto& s : module.body)
      if (s->kind == StmtKind::Wire || s->kind == StmtKind::Reg) resolve(s->type, s->name);
    if (!remaining) return;
    if (!progress) {
      std::string names;
      for (const auto& s : module.body)
        if ((s->kind == StmtKind::Wire || s->kind == StmtKind::Reg) && unknownType(s->type))
          names += " " + s->name;
      throw WidthError("cannot infer widths (self-referential or undriven):" + names);
    }
  }
}

void inferModuleWidths(Module& module) {
  for (const auto& p : module.ports) {
    if (!p.type.widthKnown)
      throw WidthError("port '" + p.name + "' must have an explicit width");
  }
  SymbolTable st = SymbolTable::build(module);
  inferStmts(module.body, st);
}

bool inferUnknownWidths(Module& module, diag::DiagEngine& de) {
  size_t before = de.errorCount();
  // The fixpoint either converges or fails as a whole; there is no useful
  // per-statement recovery, so one diagnostic covers the run.
  try {
    inferUnknownWidths(module);
  } catch (const WidthError& e) {
    de.error("E0302", stripWidthPrefix(e.what()), {});
  }
  return de.errorCount() == before;
}

bool inferModuleWidths(Module& module, diag::DiagEngine& de) {
  size_t before = de.errorCount();
  for (const auto& p : module.ports) {
    if (!p.type.widthKnown)
      de.error("E0302", "port '" + p.name + "' must have an explicit width", {});
  }
  SymbolTable st = SymbolTable::build(module, de);
  inferStmtsDiag(module.body, st, de);
  return de.errorCount() == before;
}

}  // namespace essent::firrtl
