// Recursive-descent parser producing the AST in ast.h from FIRRTL text.
//
// The diagnostic-collecting entry point reports every syntax error in one
// pass (codes E02xx) using panic-mode recovery: a broken statement is
// reported, the parser syncs to the next statement line (skipping any
// nested indent block), and parsing continues; a broken module header
// skips that module's whole body. The legacy entry point throws
// ParseError/LexError carrying the first diagnostic.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "diag/diag.h"
#include "firrtl/ast.h"

namespace essent::firrtl {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& msg, int line)
      : std::runtime_error("firrtl parse error (line " + std::to_string(line) + "): " + msg) {}
};

// Parses with recovery, reporting through `de` (lexical errors included).
// Always returns a circuit (possibly incomplete); callers must treat it as
// unusable when de.hasErrors().
std::unique_ptr<Circuit> parseCircuit(const std::string& source, diag::DiagEngine& de);

// Legacy contract: throws ParseError (or LexError for lexical problems) on
// the first error.
std::unique_ptr<Circuit> parseCircuit(const std::string& source);

}  // namespace essent::firrtl
