// Recursive-descent parser producing the AST in ast.h from FIRRTL text.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "firrtl/ast.h"

namespace essent::firrtl {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& msg, int line)
      : std::runtime_error("firrtl parse error (line " + std::to_string(line) + "): " + msg) {}
};

// Parses a full circuit; throws ParseError / LexError on malformed input.
std::unique_ptr<Circuit> parseCircuit(const std::string& source);

}  // namespace essent::firrtl
