// Pretty-printer emitting parseable FIRRTL text from the AST; used for
// round-trip testing and for dumping lowered forms while debugging.
#pragma once

#include <string>

#include "firrtl/ast.h"

namespace essent::firrtl {

std::string printCircuit(const Circuit& circuit);
std::string printModule(const Module& module);
std::string printStmt(const Stmt& stmt, int indentLevel);

}  // namespace essent::firrtl
