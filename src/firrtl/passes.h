// Lowering passes from a parsed circuit to the single flat module consumed
// by the simulation IR builder:
//
//   1. flattenInstances — recursively inlines every `inst` into the main
//      module. Child declarations are renamed with a dotted instance prefix
//      ("core.alu.sum") and child ports become wires bridging parent
//      connects and child logic. The result is instance-free.
//   2. expandWhens — removes all `when` blocks by rewriting conditional
//      connects into mux trees with FIRRTL last-connect semantics.
//      Registers default to holding their value; wires and ports default to
//      zero when never unconditionally driven (`is invalid` also reads as
//      zero). printf/stop enables are ANDed with their `when` path
//      condition. The result has exactly one connect per driven target.
//
// lowerCircuit() chains both passes and then runs width inference, yielding
// the canonical input for sim::buildSimIR().
#pragma once

#include <memory>

#include "firrtl/ast.h"

namespace essent::firrtl {

// Expands aggregate types (bundles and vectors) into ground-typed leaves
// ("LowerTypes"): ports, wires and registers of aggregate type become one
// declaration per leaf, named with dotted paths ("io.out", "v.3"); bulk
// connects and invalidates expand per leaf, honouring `flip` directions;
// nodes aliasing an aggregate reference expand to per-leaf nodes. Must run
// before flattenInstances (it resolves instance port bundles through the
// original module signatures). Limitations (diagnosed with errors):
// aggregate-typed memories, aggregate expressions other than references,
// and non-reference aggregate register reset values.
void lowerAggregates(Circuit& circuit);

// Inlines all module instances reachable from the main module. The returned
// module has the main module's name and ports. Throws WidthError on unknown
// module references or instantiation cycles.
std::unique_ptr<Module> flattenInstances(const Circuit& circuit);

// Removes when/else blocks and invalidates; leaves one connect per target.
void expandWhens(Module& module);

// flattenInstances + expandWhens + inferModuleWidths.
std::unique_ptr<Module> lowerCircuit(const Circuit& circuit);

}  // namespace essent::firrtl
