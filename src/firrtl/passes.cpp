#include "firrtl/passes.h"

#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "firrtl/widths.h"
#include "support/strutil.h"

namespace essent::firrtl {

namespace {

// ---------------------------------------------------------------------------
// flattenInstances

void prefixExpr(Expr& e, const std::string& prefix) {
  if (e.kind == ExprKind::Ref) {
    e.name = prefix + e.name;
    return;
  }
  for (auto& a : e.args) prefixExpr(*a, prefix);
}

void inlineBody(const Module& mod, const Circuit& circuit, const std::string& prefix,
                std::vector<StmtPtr>& out, std::unordered_set<std::string>& onPath);

// Clones `s` with all declared names and references prefixed, expanding
// nested instances recursively.
void inlineStmt(const Stmt& s, const Circuit& circuit, const std::string& prefix,
                std::vector<StmtPtr>& out, std::unordered_set<std::string>& onPath) {
  if (s.kind == StmtKind::Inst) {
    const Module* child = circuit.findModule(s.moduleName);
    if (!child) throw WidthError("instance of unknown module '" + s.moduleName + "'");
    if (onPath.count(child->name))
      throw WidthError("instantiation cycle through module '" + child->name + "'");
    std::string childPrefix = prefix + s.name + ".";
    // Child ports become wires bridging parent and child logic.
    for (const auto& p : child->ports) {
      out.push_back(makeWire(childPrefix + p.name, p.type));
    }
    onPath.insert(child->name);
    inlineBody(*child, circuit, childPrefix, out, onPath);
    onPath.erase(child->name);
    return;
  }
  if (s.kind == StmtKind::When) {
    ExprPtr cond = s.expr->clone();
    prefixExpr(*cond, prefix);
    std::vector<StmtPtr> thenBody, elseBody;
    for (const auto& t : s.thenBody) inlineStmt(*t, circuit, prefix, thenBody, onPath);
    for (const auto& t : s.elseBody) inlineStmt(*t, circuit, prefix, elseBody, onPath);
    out.push_back(makeWhen(std::move(cond), std::move(thenBody), std::move(elseBody)));
    return;
  }
  StmtPtr c = s.clone();
  if (!c->name.empty() &&
      (c->kind == StmtKind::Wire || c->kind == StmtKind::Node || c->kind == StmtKind::Reg ||
       c->kind == StmtKind::Mem || c->kind == StmtKind::Connect ||
       c->kind == StmtKind::Invalidate)) {
    c->name = prefix + c->name;
  }
  if (c->expr) prefixExpr(*c->expr, prefix);
  if (c->clock) prefixExpr(*c->clock, prefix);
  if (c->pred) prefixExpr(*c->pred, prefix);
  if (c->resetCond) prefixExpr(*c->resetCond, prefix);
  if (c->resetInit) prefixExpr(*c->resetInit, prefix);
  for (auto& a : c->printArgs) prefixExpr(*a, prefix);
  out.push_back(std::move(c));
}

void inlineBody(const Module& mod, const Circuit& circuit, const std::string& prefix,
                std::vector<StmtPtr>& out, std::unordered_set<std::string>& onPath) {
  for (const auto& s : mod.body) inlineStmt(*s, circuit, prefix, out, onPath);
}

// ---------------------------------------------------------------------------
// expandWhens

ExprPtr andExpr(ExprPtr a, ExprPtr b) {
  if (!a) return b;
  if (!b) return a;
  std::vector<ExprPtr> args;
  args.push_back(std::move(a));
  args.push_back(std::move(b));
  return Expr::prim(PrimOpKind::And, std::move(args), {});
}

ExprPtr notExpr(ExprPtr a) {
  std::vector<ExprPtr> args;
  args.push_back(std::move(a));
  return Expr::prim(PrimOpKind::Not, std::move(args), {});
}

ExprPtr zeroOf(const Type& t) {
  uint32_t w = t.simWidth();
  if (t.kind == TypeKind::SInt) return Expr::sintLit(w, BitVec(w));
  return Expr::uintLit(w, BitVec(w));
}

struct WhenExpander {
  const SymbolTable& symbols;
  // target -> current driving expression (nullptr means "never driven yet").
  std::map<std::string, ExprPtr> current;
  // registers keep default = themselves
  std::unordered_set<std::string> regNames;
  std::vector<StmtPtr> decls;     // hoisted declarations, in order
  std::vector<StmtPtr> effects;   // printf/stop with rewritten enables

  explicit WhenExpander(const SymbolTable& st) : symbols(st) {}

  ExprPtr priorValue(const std::string& target) {
    auto it = current.find(target);
    if (it != current.end() && it->second) return it->second->clone();
    if (regNames.count(target)) return Expr::ref(target);
    return zeroOf(symbols.lookup(target));
  }

  void setValue(const std::string& target, ExprPtr value, const ExprPtr& cond) {
    if (cond) {
      value = Expr::mux(cond->clone(), std::move(value), priorValue(target));
    }
    current[target] = std::move(value);
  }

  void walk(const std::vector<StmtPtr>& body, const ExprPtr& cond) {
    for (const auto& s : body) {
      switch (s->kind) {
        case StmtKind::Wire:
        case StmtKind::Node:
        case StmtKind::Mem:
          decls.push_back(s->clone());
          break;
        case StmtKind::Reg:
          regNames.insert(s->name);
          decls.push_back(s->clone());
          break;
        case StmtKind::Connect:
          setValue(s->name, s->expr->clone(), cond);
          break;
        case StmtKind::Invalidate: {
          Type t = symbols.lookup(s->name);
          if (t.kind == TypeKind::Clock) break;  // invalid clocks stay unwired
          setValue(s->name, zeroOf(t), cond);
          break;
        }
        case StmtKind::When: {
          ExprPtr thenCond = andExpr(cond ? cond->clone() : nullptr, s->expr->clone());
          walk(s->thenBody, thenCond);
          if (!s->elseBody.empty()) {
            ExprPtr elseCond = andExpr(cond ? cond->clone() : nullptr, notExpr(s->expr->clone()));
            walk(s->elseBody, elseCond);
          }
          break;
        }
        case StmtKind::Printf:
        case StmtKind::Stop:
        case StmtKind::Assert: {
          StmtPtr c = s->clone();
          if (cond) c->expr = andExpr(cond->clone(), std::move(c->expr));
          effects.push_back(std::move(c));
          break;
        }
        case StmtKind::Inst:
          throw WidthError("expandWhens requires an instance-free module");
        case StmtKind::Skip:
          break;
      }
    }
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// lowerAggregates (LowerTypes)

// Invokes fn(suffix, groundType, flipParity) for every ground leaf of `t`.
// Suffixes are "" for ground types or ".a.3.b"-style dotted paths.
template <typename Fn>
void forEachLeaf(const Type& t, const std::string& suffix, bool flipped, const Fn& fn) {
  switch (t.kind) {
    case TypeKind::Bundle:
      for (const Field& f : *t.fields)
        forEachLeaf(f.type, suffix + "." + f.name, flipped ^ f.flip, fn);
      break;
    case TypeKind::Vector:
      for (uint32_t i = 0; i < t.size; i++)
        forEachLeaf(*t.elem, suffix + "." + std::to_string(i), flipped, fn);
      break;
    default:
      fn(suffix, t, flipped);
      break;
  }
}

namespace {

struct ResolvedAgg {
  Type type;        // type at the end of the path
  bool flip = false;  // accumulated flip parity along the path
  // True when writing to this path's forward leaves is the natural
  // direction (false for local input ports / instance output ports).
  bool rootForward = true;
  bool found = false;
};

class AggLowerer {
 public:
  explicit AggLowerer(Circuit& circuit) : circuit_(circuit) {
    // Snapshot every module's original port list (instance resolution must
    // not depend on lowering order).
    for (const auto& m : circuit.modules) {
      auto& ports = origPorts_[m->name];
      for (const auto& p : m->ports) ports.push_back(p);
    }
  }

  void run() {
    for (auto& m : circuit_.modules) lowerModule(*m);
  }

 private:
  Circuit& circuit_;
  std::unordered_map<std::string, std::vector<Port>> origPorts_;

  // Per-module state.
  std::unordered_map<std::string, Type> declType_;   // ports/wires/regs/nodes
  std::unordered_map<std::string, PortDir> portDir_;
  std::unordered_map<std::string, std::string> instOf_;

  [[noreturn]] void fail(const std::string& msg) const { throw WidthError(msg); }

  // Walks `segments[from..]` down an aggregate type.
  ResolvedAgg walkType(Type t, bool flip, const std::vector<std::string>& segs, size_t from) const {
    for (size_t i = from; i < segs.size(); i++) {
      if (t.kind == TypeKind::Bundle) {
        bool hit = false;
        for (const Field& f : *t.fields) {
          if (f.name == segs[i]) {
            flip ^= f.flip;
            t = f.type;
            hit = true;
            break;
          }
        }
        if (!hit) return {};
      } else if (t.kind == TypeKind::Vector) {
        char* end = nullptr;
        long idx = std::strtol(segs[i].c_str(), &end, 10);
        if (end == segs[i].c_str() || *end != '\0' || idx < 0 ||
            static_cast<uint32_t>(idx) >= t.size)
          return {};
        t = *t.elem;
      } else {
        return {};
      }
    }
    ResolvedAgg r;
    r.type = t;
    r.flip = flip;
    r.found = true;
    return r;
  }

  // Resolves a dotted path against the module's declarations and instance
  // ports. Declared names may themselves contain dots (lowered leaves), so
  // the longest declared prefix wins.
  ResolvedAgg resolve(const std::string& path) const {
    std::vector<std::string> segs = splitString(path, '.');
    for (size_t k = segs.size(); k >= 1; k--) {
      std::string head = segs[0];
      for (size_t i = 1; i < k; i++) head += "." + segs[i];
      if (auto it = declType_.find(head); it != declType_.end()) {
        ResolvedAgg r = walkType(it->second, false, segs, k);
        if (!r.found) return r;
        if (auto pd = portDir_.find(head); pd != portDir_.end())
          r.rootForward = pd->second == PortDir::Output;
        return r;
      }
      if (k == 1) {
        if (auto it = instOf_.find(head); it != instOf_.end()) {
          // Instance port: resolve the remainder against the child's
          // original ports (which may themselves be aggregates).
          auto pit = origPorts_.find(it->second);
          if (pit == origPorts_.end()) return {};
          const auto& ports = pit->second;
          for (size_t k2 = segs.size(); k2 >= 2; k2--) {
            std::string pname = segs[1];
            for (size_t i = 2; i < k2; i++) pname += "." + segs[i];
            for (const Port& p : ports) {
              if (p.name == pname) {
                ResolvedAgg r = walkType(p.type, false, segs, k2);
                if (r.found) r.rootForward = p.dir == PortDir::Input;
                return r;
              }
            }
          }
        }
      }
    }
    return {};
  }

  void lowerModule(Module& m) {
    declType_.clear();
    portDir_.clear();
    instOf_.clear();

    // Ports.
    std::vector<Port> newPorts;
    for (const Port& p : m.ports) {
      declType_[p.name] = p.type;
      portDir_[p.name] = p.dir;
      if (p.type.isGround()) {
        newPorts.push_back(p);
        continue;
      }
      forEachLeaf(p.type, "", false, [&](const std::string& suffix, const Type& g, bool flip) {
        Port leaf;
        leaf.name = p.name + suffix;
        leaf.type = g;
        bool input = (p.dir == PortDir::Input) != flip;
        leaf.dir = input ? PortDir::Input : PortDir::Output;
        newPorts.push_back(std::move(leaf));
      });
    }
    m.ports = std::move(newPorts);

    std::vector<StmtPtr> newBody;
    lowerBody(m.body, newBody);
    m.body = std::move(newBody);
  }

  void lowerBody(std::vector<StmtPtr>& body, std::vector<StmtPtr>& out) {
    for (auto& s : body) lowerStmt(std::move(s), out);
  }

  void lowerStmt(StmtPtr s, std::vector<StmtPtr>& out) {
    switch (s->kind) {
      case StmtKind::Wire: {
        declType_[s->name] = s->type;
        if (s->type.isGround()) {
          out.push_back(std::move(s));
          return;
        }
        forEachLeaf(s->type, "", false,
                    [&](const std::string& suffix, const Type& g, bool) {
                      out.push_back(makeWire(s->name + suffix, g));
                    });
        return;
      }
      case StmtKind::Reg: {
        declType_[s->name] = s->type;
        if (s->type.isGround()) {
          out.push_back(std::move(s));
          return;
        }
        if (s->resetInit && s->resetInit->kind != ExprKind::Ref)
          fail("aggregate register '" + s->name + "' reset value must be a reference");
        forEachLeaf(s->type, "", false,
                    [&](const std::string& suffix, const Type& g, bool) {
                      ExprPtr init;
                      if (s->resetInit) init = Expr::ref(s->resetInit->name + suffix);
                      out.push_back(makeReg(s->name + suffix, g, s->clock->clone(),
                                            s->resetCond ? s->resetCond->clone() : nullptr,
                                            std::move(init)));
                    });
        return;
      }
      case StmtKind::Node: {
        // A node aliasing an aggregate reference expands to leaf aliases.
        if (s->expr->kind == ExprKind::Ref) {
          ResolvedAgg r = resolve(s->expr->name);
          if (r.found && !r.type.isGround()) {
            declType_[s->name] = r.type;
            std::string src = s->expr->name;
            forEachLeaf(r.type, "", false,
                        [&](const std::string& suffix, const Type&, bool) {
                          out.push_back(makeNode(s->name + suffix, Expr::ref(src + suffix)));
                        });
            return;
          }
        }
        out.push_back(std::move(s));
        return;
      }
      case StmtKind::Mem:
        if (!s->type.isGround())
          fail("memory '" + s->name + "' has an aggregate data-type (unsupported)");
        out.push_back(std::move(s));
        return;
      case StmtKind::Inst:
        instOf_[s->name] = s->moduleName;
        out.push_back(std::move(s));
        return;
      case StmtKind::Connect: {
        ResolvedAgg lhs = resolve(s->name);
        if (!lhs.found || lhs.type.isGround()) {
          out.push_back(std::move(s));
          return;
        }
        if (s->expr->kind != ExprKind::Ref)
          fail("aggregate connect to '" + s->name + "' requires a reference on the rhs");
        std::string rhs = s->expr->name;
        std::string lhsPath = s->name;
        forEachLeaf(lhs.type, "", false,
                    [&](const std::string& suffix, const Type&, bool leafFlip) {
                      bool forward = lhs.rootForward != leafFlip;
                      if (forward)
                        out.push_back(makeConnect(lhsPath + suffix, Expr::ref(rhs + suffix)));
                      else
                        out.push_back(makeConnect(rhs + suffix, Expr::ref(lhsPath + suffix)));
                    });
        return;
      }
      case StmtKind::Invalidate: {
        ResolvedAgg lhs = resolve(s->name);
        if (!lhs.found || lhs.type.isGround()) {
          out.push_back(std::move(s));
          return;
        }
        std::string lhsPath = s->name;
        forEachLeaf(lhs.type, "", false,
                    [&](const std::string& suffix, const Type&, bool leafFlip) {
                      // Only the drivable direction can be invalidated.
                      if (lhs.rootForward != leafFlip)
                        out.push_back(makeInvalidate(lhsPath + suffix));
                    });
        return;
      }
      case StmtKind::When: {
        std::vector<StmtPtr> thenBody, elseBody;
        lowerBody(s->thenBody, thenBody);
        lowerBody(s->elseBody, elseBody);
        out.push_back(makeWhen(std::move(s->expr), std::move(thenBody), std::move(elseBody)));
        return;
      }
      default:
        out.push_back(std::move(s));
        return;
    }
  }
};

}  // namespace

void lowerAggregates(Circuit& circuit) {
  AggLowerer lowerer(circuit);
  lowerer.run();
}

std::unique_ptr<Module> flattenInstances(const Circuit& circuit) {
  const Module* main = circuit.mainModule();
  auto flat = std::make_unique<Module>();
  flat->name = main->name;
  flat->ports = main->ports;
  std::unordered_set<std::string> onPath = {main->name};
  inlineBody(*main, circuit, "", flat->body, onPath);
  return flat;
}

void expandWhens(Module& module) {
  SymbolTable st = SymbolTable::build(module);
  // Nodes must be in the table for prior-value typing of connects to nodes'
  // consumers; node types are unknown pre-inference, but nodes are never
  // legal connect targets so the table from declarations suffices.
  WhenExpander ex(st);
  ex.walk(module.body, nullptr);

  std::vector<StmtPtr> newBody;
  for (auto& d : ex.decls) newBody.push_back(std::move(d));
  // Emit one final connect per driven target, in name order for determinism.
  for (auto& [target, value] : ex.current) {
    if (value) newBody.push_back(makeConnect(target, std::move(value)));
  }
  // Registers that were never connected hold their value.
  for (const auto& r : ex.regNames) {
    if (!ex.current.count(r)) newBody.push_back(makeConnect(r, Expr::ref(r)));
  }
  for (auto& e : ex.effects) newBody.push_back(std::move(e));
  module.body = std::move(newBody);
}

std::unique_ptr<Module> lowerCircuit(const Circuit& circuit) {
  // lowerAggregates mutates the circuit; work on a private copy so callers
  // keep their parsed AST intact.
  Circuit copy;
  copy.name = circuit.name;
  for (const auto& m : circuit.modules) {
    auto cm = std::make_unique<Module>();
    cm->name = m->name;
    cm->ports = m->ports;
    for (const auto& s : m->body) cm->body.push_back(s->clone());
    copy.modules.push_back(std::move(cm));
  }
  lowerAggregates(copy);
  auto flat = flattenInstances(copy);
  expandWhens(*flat);
  inferUnknownWidths(*flat);
  inferModuleWidths(*flat);
  return flat;
}

}  // namespace essent::firrtl
