// C++ code generation backend: the analogue of ESSENT's output. Given a
// SimIR (and, for CCSS mode, a CondPartSchedule), emits a self-contained
// C++17 translation unit defining a `struct <className>` with one public
// member per named signal, backdoor-accessible memories, and an eval()
// advancing one clock cycle.
//
// Two modes, mirroring the paper's evaluation configurations:
//  * baseline  — straight-line full-cycle evaluation (static schedule, no
//    conditioning);
//  * CCSS      — one function per partition with activity flags, old-value
//    saves, branchless OR-reduced output triggers, in-place elided state
//    updates, and a main eval() that checks input changes and sweeps the
//    static schedule.
//
// Branch hints (§III-B2): reset-selected mux ways, printf bodies and
// stop/assertion handling are annotated unlikely so the compiler moves the
// cold code out of the hot instruction working set.
//
// Limitation (documented in DESIGN.md): generated code uses plain uint64_t
// storage, so every signal must be at most 64 bits wide; emitCpp throws
// CodegenError otherwise. The in-process engines have no such limit.
#pragma once

#include <stdexcept>
#include <string>

#include "core/schedule.h"
#include "sim/sim_ir.h"

namespace essent::codegen {

struct CodegenOptions {
  std::string className = "Simulator";
  bool ccss = true;         // false = baseline full-cycle
  bool branchHints = true;  // cold-path annotations
  // Conditional evaluation of multiplexor ways (§III-B): ops whose only
  // consumer is one arm of a mux are sunk into that arm's if/else branch,
  // so the untaken way is never computed. Only compiler temporaries are
  // sunk (named signals stay observable).
  bool muxShadow = true;
};

class CodegenError : public std::runtime_error {
 public:
  explicit CodegenError(const std::string& m) : std::runtime_error("codegen error: " + m) {}
};

// `schedule` may be null when opts.ccss is false.
std::string emitCpp(const sim::SimIR& ir, const core::CondPartSchedule* schedule,
                    const CodegenOptions& opts = {});

// Sharded emission for million-node designs, where a single translation
// unit would stall (or OOM) the host C++ compiler: `header` declares the
// simulator struct and `units[k]` defines a slice of its evaluation code,
// so the units compile in parallel and each stays a tractable size.
// Partition functions (CCSS) / schedule chunks (baseline) are assigned to
// units in schedule order, balanced by emitted byte count; unit 0 defines
// eval(). Write `header` as `<base>.h` and unit k as `<base>_<k>.cpp` —
// every unit includes the header by that name.
struct ShardedCpp {
  std::string headerName;             // "<base>.h"
  std::string header;
  std::vector<std::string> unitNames; // "<base>_<k>.cpp"
  std::vector<std::string> units;
};

// `shards` is clamped to [1, work functions]; `base` is the file-name stem
// recorded in headerName/unitNames (and in each unit's #include line).
ShardedCpp emitCppSharded(const sim::SimIR& ir, const core::CondPartSchedule* schedule,
                          const CodegenOptions& opts, uint32_t shards,
                          const std::string& base = "sim");

// The C identifier used for a signal in generated code (stable mapping,
// collision-free); exposed so harnesses can address generated members.
std::string memberName(const sim::SimIR& ir, int32_t sig);

}  // namespace essent::codegen
