#include "codegen/emitter.h"

#include <algorithm>

#include <unordered_map>
#include <unordered_set>

#include "obs/phase_timer.h"
#include "support/strutil.h"

namespace essent::codegen {

using core::CondPartSchedule;
using sim::Op;
using sim::OpCode;
using sim::SigKind;
using sim::SimIR;

namespace {

std::vector<std::string> buildNames(const SimIR& ir) {
  std::vector<std::string> names(ir.signals.size());
  std::unordered_set<std::string> used = {"eval", "cycles_", "stopped_", "exit_code_"};
  for (size_t s = 0; s < ir.signals.size(); s++) {
    const auto& sig = ir.signals[s];
    std::string base = sig.name.empty() ? strfmt("t%zu", s) : sanitizeIdent(sig.name);
    std::string name = base;
    int suffix = 1;
    while (!used.insert(name).second) name = base + "_" + std::to_string(suffix++);
    names[s] = name;
  }
  return names;
}

std::string maskExpr(const std::string& e, uint32_t width) {
  if (width >= 64) return e;
  return strfmt("(%s) & 0x%llxull", e.c_str(), static_cast<unsigned long long>((1ull << width) - 1));
}

class Emitter {
 public:
  Emitter(const SimIR& ir, const CondPartSchedule* sched, const CodegenOptions& opts)
      : ir_(ir), sched_(sched), opts_(opts), names_(buildNames(ir)) {
    for (const auto& sig : ir.signals) {
      if (sig.kind != SigKind::Dead && sig.width > 64)
        throw CodegenError("signal '" + sig.name + "' is wider than 64 bits; the C++ backend "
                           "emits uint64_t storage (use the in-process engines instead)");
    }
    if (opts.ccss && !sched) throw CodegenError("CCSS mode requires a schedule");
    resetSig_ = ir.findSignal("reset");
    computeUseCounts();
  }

  std::string run() {
    emitPreamble();
    emitMembers();
    if (opts_.ccss) emitPartitionFunctions();
    emitEval();
    out_ += "};\n\n}  // namespace essent_gen\n";
    return out_;
  }

  ShardedCpp runSharded(uint32_t shards, const std::string& base) {
    ShardedCpp sh;
    sh.headerName = base + ".h";
    const std::string& cn = opts_.className;

    // Work-function definitions, in schedule order: one per partition
    // (CCSS) or one per contiguous op slice (baseline).
    std::vector<std::string> decls, defs;
    if (opts_.ccss) {
      for (size_t pos = 0; pos < sched_->parts.size(); pos++) {
        decls.push_back(strfmt("  void part_%zu();\n", pos));
        out_.clear();
        emitPartitionFunction(pos, strfmt("void %s::part_%zu()", cn.c_str(), pos), "  ",
                              "}\n\n");
        defs.push_back(std::move(out_));
      }
    } else {
      std::vector<int32_t> all(ir_.ops.size());
      for (size_t i = 0; i < all.size(); i++) all[i] = static_cast<int32_t>(i);
      const size_t per = all.size() / std::max<uint32_t>(1, shards) + 1;
      size_t from = 0;
      while (from < all.size()) {
        size_t to = std::min(all.size(), from + per);
        // Never split a combinational-loop supernode's convergence run.
        while (to < all.size() &&
               ir_.superOf(static_cast<size_t>(all[to])) >= 0 &&
               ir_.superOf(static_cast<size_t>(all[to])) ==
                   ir_.superOf(static_cast<size_t>(all[to - 1])))
          to++;
        const size_t k = decls.size();
        decls.push_back(strfmt("  void chunk_%zu();\n", k));
        out_.clear();
        out_ += strfmt("void %s::chunk_%zu() {\n", cn.c_str(), k);
        emitOpSeq(std::vector<int32_t>(all.begin() + static_cast<ptrdiff_t>(from),
                                       all.begin() + static_cast<ptrdiff_t>(to)),
                  "  ");
        out_ += "}\n\n";
        defs.push_back(std::move(out_));
        from = to;
      }
    }

    // finish_(): side effects + phase-2 state updates + cycle count.
    out_.clear();
    out_ += strfmt("void %s::finish_() {\n", cn.c_str());
    emitPrintsAndStops("  ");
    if (opts_.ccss) {
      for (const auto& rw : sched_->deferredRegs) emitRegWrite(rw.regIdx, &rw.wakeParts, "  ");
      for (const auto& mw : sched_->deferredMemWrites)
        emitMemWrite(mw.memIdx, mw.writerIdx, &mw.wakeParts, "  ");
    } else {
      for (size_t r = 0; r < ir_.regs.size(); r++)
        emitRegWrite(static_cast<int32_t>(r), nullptr, "  ");
      for (size_t m = 0; m < ir_.mems.size(); m++)
        for (size_t w = 0; w < ir_.mems[m].writers.size(); w++)
          emitMemWrite(static_cast<int32_t>(m), static_cast<int32_t>(w), nullptr, "  ");
    }
    out_ += "  cycles_++;\n}\n";
    const std::string finishDef = std::move(out_);

    // Contiguous assignment of work functions to units, balanced by
    // emitted byte count (schedule order is preserved by the call sites,
    // so placement only affects compile-time balance).
    const uint32_t S = std::max<uint32_t>(
        1, std::min<uint32_t>(shards, static_cast<uint32_t>(std::max<size_t>(1, defs.size()))));
    size_t totalBytes = 0;
    for (const auto& d : defs) totalBytes += d.size();
    std::vector<std::pair<size_t, size_t>> range(S, {0, 0});
    {
      size_t i = 0, acc = 0;
      for (uint32_t k = 0; k < S; k++) {
        range[k].first = i;
        const size_t goal = totalBytes * (k + 1) / S;
        while (i < defs.size() && (acc < goal || k + 1 == S)) acc += defs[i++].size();
        range[k].second = i;
      }
    }

    // eval(): the only cross-unit glue; lives in unit 0.
    out_.clear();
    out_ += strfmt("void %s::eval() {\n", cn.c_str());
    if (opts_.ccss) {
      out_ += "  // 1. external input change detection\n";
      emitInputSweep("  ");
      out_ += "  first_cycle_ = false;\n";
      out_ += "  // 2. singular static partition sweep, one chunk per unit\n";
      for (uint32_t k = 0; k < S; k++) out_ += strfmt("  sweepChunk_%u();\n", k);
    } else {
      for (size_t j = 0; j < defs.size(); j++) out_ += strfmt("  chunk_%zu();\n", j);
    }
    out_ += "  // side effects + phase-2 state updates\n  finish_();\n}\n";
    const std::string evalDef = std::move(out_);

    // Header: struct definition with member state + method declarations.
    out_.clear();
    emitPreamble();
    emitMembers();
    out_ += strfmt("  // --- evaluation (definitions sharded across %u translation units) ---\n",
                   S);
    for (const auto& d : decls) out_ += d;
    if (opts_.ccss)
      for (uint32_t k = 0; k < S; k++) out_ += strfmt("  void sweepChunk_%u();\n", k);
    out_ += "  void finish_();\n  void eval();\n";
    out_ += "};\n\n}  // namespace essent_gen\n";
    sh.header = "#pragma once\n" + out_;

    for (uint32_t k = 0; k < S; k++) {
      sh.unitNames.push_back(strfmt("%s_%u.cpp", base.c_str(), k));
      std::string u = strfmt(
          "// Generated by essent-cpp (unit %u of %u). Do not edit.\n"
          "#include \"%s.h\"\n\nnamespace essent_gen {\n\n",
          k, S, base.c_str());
      for (size_t i = range[k].first; i < range[k].second; i++) u += defs[i];
      if (opts_.ccss) {
        u += strfmt("void %s::sweepChunk_%u() {\n", cn.c_str(), k);
        for (size_t i = range[k].first; i < range[k].second; i++)
          u += strfmt("  if (act_[%zu]) part_%zu();\n", i, i);
        u += "}\n\n";
      }
      if (k + 1 == S) u += finishDef + "\n";
      if (k == 0) u += evalDef + "\n";
      u += "}  // namespace essent_gen\n";
      sh.units.push_back(std::move(u));
    }
    return sh;
  }

 private:
  const SimIR& ir_;
  const CondPartSchedule* sched_;
  CodegenOptions opts_;
  std::vector<std::string> names_;
  std::string out_;
  int32_t resetSig_ = -1;
  // Number of consumers of each signal across the whole program; named
  // signals are pinned (never sinkable into a mux way) with a sentinel.
  std::vector<uint32_t> useCount_;

  void computeUseCounts() {
    useCount_.assign(ir_.signals.size(), 0);
    auto use = [&](int32_t s) {
      if (s >= 0) useCount_[static_cast<size_t>(s)]++;
    };
    for (const auto& op : ir_.ops) {
      int n = op.numArgs();
      for (int k = 0; k < n; k++) use(op.args[k]);
    }
    for (const auto& r : ir_.regs) use(r.next);
    for (const auto& m : ir_.mems) {
      for (const auto& rd : m.readers) {
        use(rd.addr);
        use(rd.en);
      }
      for (const auto& w : m.writers) {
        use(w.addr);
        use(w.en);
        use(w.data);
        use(w.mask);
      }
    }
    for (const auto& p : ir_.prints) {
      use(p.en);
      for (int32_t a : p.args) use(a);
    }
    for (const auto& s : ir_.stops) use(s.en);
    if (sched_) {
      for (const auto& part : sched_->parts)
        for (const auto& o : part.outputs) use(o.sig);
    }
    // Observability pin: only anonymous temporaries may go stale.
    for (size_t s = 0; s < ir_.signals.size(); s++)
      if (ir_.signals[s].kind != SigKind::Temp) useCount_[s] += 1000;
  }

  const std::string& name(int32_t sig) const { return names_[static_cast<size_t>(sig)]; }
  uint32_t width(int32_t sig) const { return ir_.signals[static_cast<size_t>(sig)].width; }
  bool isSigned(int32_t sig) const { return ir_.signals[static_cast<size_t>(sig)].isSigned; }

  std::string sx(int32_t sig) const {
    return strfmt("sx_(%s, %u)", name(sig).c_str(), width(sig));
  }
  std::string sxU(int32_t sig) const {
    return strfmt("(uint64_t)sx_(%s, %u)", name(sig).c_str(), width(sig));
  }

  void emitPreamble() {
    out_ +=
        "// Generated by essent-cpp (ESSENT reproduction). Do not edit.\n"
        "#include <cstdint>\n#include <cstdio>\n\n"
        "namespace essent_gen {\n\n"
        "static inline int64_t sx_(uint64_t v, int w) {\n"
        "  if (w == 0) return 0;\n"
        "  if (w >= 64) return (int64_t)v;\n"
        "  uint64_t m = 1ull << (w - 1);\n"
        "  return (int64_t)((v ^ m) - m);\n"
        "}\n"
        "static inline void printBin_(uint64_t v, int w) {\n"
        "  for (int i = w - 1; i >= 0; i--) std::putchar(((v >> i) & 1) ? '1' : '0');\n"
        "}\n\n";
    out_ += "struct " + opts_.className + " {\n";
  }

  void emitMembers() {
    // Constants are folded into member initializers and never re-evaluated.
    std::vector<int32_t> constPoolOf(ir_.signals.size(), -1);
    for (const auto& op : ir_.ops)
      if (op.code == OpCode::Const) constPoolOf[static_cast<size_t>(op.dest)] =
          static_cast<int32_t>(op.imm0);
    out_ += "  // --- design state (one member per signal) ---\n";
    for (size_t s = 0; s < ir_.signals.size(); s++) {
      if (ir_.signals[s].kind == SigKind::Dead) continue;
      std::string init = "0";
      if (constPoolOf[s] >= 0)
        init = "0x" + ir_.constPool[static_cast<size_t>(constPoolOf[s])].toHexString() + "ull";
      out_ += strfmt("  uint64_t %s = %s;  // width %u%s\n", names_[s].c_str(), init.c_str(),
                     ir_.signals[s].width, ir_.signals[s].isSigned ? " (signed)" : "");
    }
    for (const auto& m : ir_.mems) {
      out_ += strfmt("  uint64_t mem_%s[%llu] = {};\n", sanitizeIdent(m.name).c_str(),
                     static_cast<unsigned long long>(m.depth));
    }
    out_ += "  uint64_t cycles_ = 0;\n  bool stopped_ = false;\n  int exit_code_ = 0;\n";
    if (opts_.ccss) {
      out_ += strfmt("  bool act_[%zu];\n", sched_->parts.size());
      for (int32_t in : ir_.inputs)
        out_ += strfmt("  uint64_t prev_%s = 0;\n", name(in).c_str());
      out_ += "  bool first_cycle_ = true;\n";
      out_ += strfmt("  %s() { for (auto& a : act_) a = true; }\n", opts_.className.c_str());
    }
    out_ += "\n";
  }

  // RHS expression implementing `op` (pre-mask); mirrors sim/op_eval.h's
  // fast path exactly so generated simulators match the interpreter
  // bit-for-bit.
  std::string opExpr(const Op& op) {
    const bool sg = op.signedOp;
    auto A = [&] { return name(op.args[0]); };
    auto B = [&] { return name(op.args[1]); };
    auto binArith = [&](const char* sym) {
      if (sg)
        return strfmt("(uint64_t)(%s %s %s)", sx(op.args[0]).c_str(), sym, sx(op.args[1]).c_str());
      return strfmt("(%s %s %s)", A().c_str(), sym, B().c_str());
    };
    auto cmp = [&](const char* sym) {
      if (sg)
        return strfmt("(uint64_t)(%s %s %s)", sx(op.args[0]).c_str(), sym, sx(op.args[1]).c_str());
      return strfmt("(uint64_t)(%s %s %s)", A().c_str(), sym, B().c_str());
    };
    uint32_t aW = op.args[0] >= 0 ? width(op.args[0]) : 0;
    uint32_t bW = op.args[1] >= 0 ? width(op.args[1]) : 0;
    uint32_t dW = width(op.dest);
    switch (op.code) {
      case OpCode::Add: return binArith("+");
      case OpCode::Sub: return binArith("-");
      case OpCode::Mul:
        if (sg) return strfmt("((uint64_t)%s * (uint64_t)%s)", sx(op.args[0]).c_str(), sx(op.args[1]).c_str());
        return binArith("*");
      case OpCode::Div:
        if (sg)
          return strfmt("(%s == 0 ? 0 : (uint64_t)(%s / %s))", B().c_str(),
                        sx(op.args[0]).c_str(), sx(op.args[1]).c_str());
        return strfmt("(%s == 0 ? 0 : %s / %s)", B().c_str(), A().c_str(), B().c_str());
      case OpCode::Rem:
        // x % 0 := x truncated to the result width (bvops::rem semantics;
        // native C++ % would trap). The signed form also guards the divisor
        // -1: INT64_MIN % -1 is UB in C++ but mathematically 0.
        if (sg)
          return strfmt("(%s == 0 ? %s : %s == -1 ? 0 : (uint64_t)(%s %% %s))", B().c_str(),
                        A().c_str(), sx(op.args[1]).c_str(), sx(op.args[0]).c_str(),
                        sx(op.args[1]).c_str());
        return strfmt("(%s == 0 ? %s : %s %% %s)", B().c_str(), A().c_str(), A().c_str(),
                      B().c_str());
      case OpCode::Lt: return cmp("<");
      case OpCode::Leq: return cmp("<=");
      case OpCode::Gt: return cmp(">");
      case OpCode::Geq: return cmp(">=");
      case OpCode::Eq: return cmp("==");
      case OpCode::Neq: return cmp("!=");
      case OpCode::Dshl:
        return strfmt("(%s >= %u ? 0 : %s << %s)", B().c_str(), dW, A().c_str(), B().c_str());
      case OpCode::Dshr:
        if (sg)
          return strfmt("(uint64_t)(%s >> (%s > 63 ? 63 : %s))", sx(op.args[0]).c_str(),
                        B().c_str(), B().c_str());
        return strfmt("(%s >= %u ? 0 : %s >> %s)", B().c_str(), aW, A().c_str(), B().c_str());
      case OpCode::And:
        return sg ? strfmt("(%s & %s)", sxU(op.args[0]).c_str(), sxU(op.args[1]).c_str())
                  : binArith("&");
      case OpCode::Or:
        return sg ? strfmt("(%s | %s)", sxU(op.args[0]).c_str(), sxU(op.args[1]).c_str())
                  : binArith("|");
      case OpCode::Xor:
        return sg ? strfmt("(%s ^ %s)", sxU(op.args[0]).c_str(), sxU(op.args[1]).c_str())
                  : binArith("^");
      case OpCode::Cat:
        if (bW >= 64) return B();
        return strfmt("((%s << %u) | %s)", A().c_str(), bW, B().c_str());
      case OpCode::Not: return strfmt("(~%s)", A().c_str());
      case OpCode::Andr:
        return strfmt("(uint64_t)(%s == 0x%llxull)", A().c_str(),
                      static_cast<unsigned long long>(aW >= 64 ? ~0ull : (1ull << aW) - 1));
      case OpCode::Orr: return strfmt("(uint64_t)(%s != 0)", A().c_str());
      case OpCode::Xorr: return strfmt("(uint64_t)__builtin_parityll(%s)", A().c_str());
      case OpCode::Cvt:
      case OpCode::Pad:
      case OpCode::Copy:
        return sg ? sxU(op.args[0]) : A();
      case OpCode::Neg:
        return sg ? strfmt("(uint64_t)(-%s)", sx(op.args[0]).c_str())
                  : strfmt("(~%s + 1)", A().c_str());
      case OpCode::Shl:
        return op.imm0 >= 64 ? std::string("0ull")
                             : strfmt("(%s << %lld)", A().c_str(),
                                      static_cast<long long>(op.imm0));
      case OpCode::Shr:
        if (sg)
          return strfmt("(uint64_t)(%s >> %lld)", sx(op.args[0]).c_str(),
                        static_cast<long long>(op.imm0 > 63 ? 63 : op.imm0));
        return op.imm0 >= aW ? std::string("0ull")
                             : strfmt("(%s >> %lld)", A().c_str(),
                                      static_cast<long long>(op.imm0));
      case OpCode::Bits:
        return strfmt("(%s >> %lld)", A().c_str(), static_cast<long long>(op.imm1));
      case OpCode::Head:
        return op.imm0 == 0 ? std::string("0ull")
                            : strfmt("(%s >> %u)", A().c_str(),
                                     aW - static_cast<uint32_t>(op.imm0));
      case OpCode::Tail: return A();
      case OpCode::Mux: {
        std::string sel = A();
        // Branch hint (§III-B2): reset-selected mux ways are cold.
        if (opts_.branchHints && op.args[0] == resetSig_)
          sel = strfmt("__builtin_expect(%s, 0)", sel.c_str());
        std::string tv = sg ? sxU(op.args[1]) : B();
        std::string fv = sg ? sxU(op.args[2]) : name(op.args[2]);
        return strfmt("(%s ? %s : %s)", sel.c_str(), tv.c_str(), fv.c_str());
      }
      case OpCode::Const:
        return strfmt("0x%sull",
                      ir_.constPool[static_cast<size_t>(op.imm0)].toHexString().c_str());
      case OpCode::MemRead: {
        const auto& m = ir_.mems[static_cast<size_t>(op.imm0)];
        return strfmt("((%s != 0 && %s < %llu) ? mem_%s[%s] : 0)", B().c_str(), A().c_str(),
                      static_cast<unsigned long long>(m.depth), sanitizeIdent(m.name).c_str(),
                      A().c_str());
      }
    }
    return "0";
  }

  void emitOp(const Op& op, const std::string& indent) {
    out_ += indent + name(op.dest) + " = " + maskExpr(opExpr(op), width(op.dest)) + ";\n";
  }

  // --- conditional evaluation of multiplexor ways (§III-B) ---

  // Emits a sequence of ops (ascending topo order). With muxShadow on, any
  // op whose result is consumed only inside one arm of a mux in the same
  // sequence is sunk into that arm's branch, so the untaken way costs
  // nothing. Constants never appear here (they are hoisted into member
  // initializers).
  // Emits positions [from, to) of `ops` as a convergence loop over a
  // combinational-loop supernode (paper §II).
  size_t emitSuperRun(const std::vector<int32_t>& ops, size_t from, const std::string& indent) {
    int32_t super = ir_.superOf(static_cast<size_t>(ops[from]));
    size_t to = from;
    while (to < ops.size() && ir_.superOf(static_cast<size_t>(ops[to])) == super) to++;
    out_ += indent + "{ // combinational-loop supernode: iterate to convergence\n";
    out_ += indent + "  bool again_ = true;\n";
    out_ += indent + "  for (int guard_ = 0; again_ && guard_ < 1000; guard_++) {\n";
    out_ += indent + "    again_ = false;\n";
    out_ += indent + "    uint64_t prev_;\n";
    for (size_t p = from; p < to; p++) {
      const Op& op = ir_.ops[static_cast<size_t>(ops[p])];
      out_ += indent + "    prev_ = " + name(op.dest) + ";\n";
      emitOp(op, indent + "    ");
      out_ += indent + "    again_ |= prev_ != " + name(op.dest) + ";\n";
    }
    out_ += indent + "  }\n" + indent + "}\n";
    return to;
  }

  void emitOpSeq(const std::vector<int32_t>& ops, const std::string& indent) {
    if (!opts_.muxShadow) {
      for (size_t pos = 0; pos < ops.size();) {
        const Op& op = ir_.ops[static_cast<size_t>(ops[pos])];
        if (ir_.superOf(static_cast<size_t>(ops[pos])) >= 0) {
          pos = emitSuperRun(ops, pos, indent);
          continue;
        }
        if (op.code != OpCode::Const) emitOp(op, indent);
        pos++;
      }
      return;
    }
    std::unordered_map<int32_t, size_t> posOfOp;
    for (size_t pos = 0; pos < ops.size(); pos++) posOfOp[ops[pos]] = pos;
    std::vector<char> sunk(ops.size(), 0);
    std::vector<std::vector<size_t>> arms[2];
    arms[0].resize(ops.size());
    arms[1].resize(ops.size());

    // Later muxes first, so an outer way can swallow an entire nested
    // mux (whose own ways are then collected when it is reached).
    for (size_t pos = ops.size(); pos-- > 0;) {
      const Op& op = ir_.ops[static_cast<size_t>(ops[pos])];
      if (op.code != OpCode::Mux) continue;
      if (ir_.superOf(static_cast<size_t>(ops[pos])) >= 0) continue;  // stay in loop body
      for (int arm = 0; arm < 2; arm++) {
        std::vector<int32_t> stack = {op.args[arm + 1]};
        auto& armList = arms[arm][pos];
        while (!stack.empty()) {
          int32_t sig = stack.back();
          stack.pop_back();
          if (useCount_[static_cast<size_t>(sig)] != 1) continue;
          int32_t def = ir_.signals[static_cast<size_t>(sig)].defOp;
          if (def < 0) continue;
          auto it = posOfOp.find(def);
          if (it == posOfOp.end() || sunk[it->second]) continue;
          const Op& dop = ir_.ops[static_cast<size_t>(def)];
          if (dop.code == OpCode::Const) continue;
          if (ir_.superOf(static_cast<size_t>(def)) >= 0) continue;  // loops stay in place
          sunk[it->second] = 1;
          armList.push_back(it->second);
          int n = dop.numArgs();
          for (int k = 0; k < n; k++) stack.push_back(dop.args[k]);
        }
        std::sort(armList.begin(), armList.end());
      }
    }

    for (size_t pos = 0; pos < ops.size();) {
      if (sunk[pos]) {
        pos++;
        continue;
      }
      if (ir_.superOf(static_cast<size_t>(ops[pos])) >= 0) {
        pos = emitSuperRun(ops, pos, indent);
        continue;
      }
      emitPosStructured(ops, arms, pos, indent);
      pos++;
    }
  }

  void emitPosStructured(const std::vector<int32_t>& ops,
                         const std::vector<std::vector<size_t>> (&arms)[2], size_t pos,
                         const std::string& indent) {
    const Op& op = ir_.ops[static_cast<size_t>(ops[pos])];
    if (op.code == OpCode::Const) return;  // hoisted
    if (op.code != OpCode::Mux || (arms[0][pos].empty() && arms[1][pos].empty())) {
      emitOp(op, indent);
      return;
    }
    std::string sel = name(op.args[0]);
    if (opts_.branchHints && op.args[0] == resetSig_)
      sel = strfmt("__builtin_expect(%s, 0)", sel.c_str());
    const bool sg = op.signedOp;
    auto armExpr = [&](int arm) {
      int32_t src = op.args[arm + 1];
      return maskExpr(sg ? sxU(src) : name(src), width(op.dest));
    };
    out_ += indent + "if (" + sel + ") {\n";
    for (size_t p : arms[0][pos]) emitPosStructured(ops, arms, p, indent + "  ");
    out_ += indent + "  " + name(op.dest) + " = " + armExpr(0) + ";\n";
    out_ += indent + "} else {\n";
    for (size_t p : arms[1][pos]) emitPosStructured(ops, arms, p, indent + "  ");
    out_ += indent + "  " + name(op.dest) + " = " + armExpr(1) + ";\n";
    out_ += indent + "}\n";
  }

  void emitRegWrite(int32_t regIdx, const std::vector<int32_t>* wakeParts,
                    const std::string& indent) {
    const auto& r = ir_.regs[static_cast<size_t>(regIdx)];
    if (wakeParts) {
      out_ += indent + strfmt("if (%s != %s) {\n", name(r.sig).c_str(), name(r.next).c_str());
      out_ += indent + strfmt("  %s = %s;\n", name(r.sig).c_str(), name(r.next).c_str());
      for (int32_t p : *wakeParts) out_ += indent + strfmt("  act_[%d] = true;\n", p);
      out_ += indent + "}\n";
    } else {
      out_ += indent + strfmt("%s = %s;\n", name(r.sig).c_str(), name(r.next).c_str());
    }
  }

  void emitMemWrite(int32_t memIdx, int32_t writerIdx, const std::vector<int32_t>* wakeParts,
                    const std::string& indent) {
    const auto& m = ir_.mems[static_cast<size_t>(memIdx)];
    const auto& w = m.writers[static_cast<size_t>(writerIdx)];
    std::string arr = "mem_" + sanitizeIdent(m.name);
    out_ += indent + strfmt("if (%s && %s && %s < %llu) {\n", name(w.en).c_str(),
                            name(w.mask).c_str(), name(w.addr).c_str(),
                            static_cast<unsigned long long>(m.depth));
    if (wakeParts && !wakeParts->empty()) {
      out_ += indent + strfmt("  if (%s[%s] != %s) {\n", arr.c_str(), name(w.addr).c_str(),
                              name(w.data).c_str());
      out_ += indent + strfmt("    %s[%s] = %s;\n", arr.c_str(), name(w.addr).c_str(),
                              name(w.data).c_str());
      for (int32_t p : *wakeParts) out_ += indent + strfmt("    act_[%d] = true;\n", p);
      out_ += indent + "  }\n";
    } else {
      out_ += indent + strfmt("  %s[%s] = %s;\n", arr.c_str(), name(w.addr).c_str(),
                              name(w.data).c_str());
    }
    out_ += indent + "}\n";
  }

  void emitPrintsAndStops(const std::string& indent) {
    const char* hint = opts_.branchHints ? " [[unlikely]]" : "";
    for (const auto& p : ir_.prints) {
      out_ += indent + strfmt("if (%s)%s {\n", name(p.en).c_str(), hint);
      // Translate the FIRRTL format string into printf pieces.
      size_t argIdx = 0;
      std::string lit;
      auto flushLit = [&] {
        if (lit.empty()) return;
        std::string esc;
        for (char c : lit) {
          if (c == '\n') esc += "\\n";
          else if (c == '\t') esc += "\\t";
          else if (c == '"') esc += "\\\"";
          else if (c == '\\') esc += "\\\\";
          else if (c == '%') esc += "%%";
          else esc += c;
        }
        out_ += indent + "  std::printf(\"" + esc + "\");\n";
        lit.clear();
      };
      for (size_t i = 0; i < p.format.size(); i++) {
        char c = p.format[i];
        if (c != '%' || i + 1 >= p.format.size()) {
          lit += c;
          continue;
        }
        char f = p.format[++i];
        if (f == '%') {
          lit += '%';
          continue;
        }
        if (argIdx >= p.args.size()) {
          lit += '%';
          lit += f;
          continue;
        }
        flushLit();
        int32_t arg = p.args[argIdx++];
        switch (f) {
          case 'd':
            if (isSigned(arg))
              out_ += indent + strfmt("  std::printf(\"%%lld\", (long long)%s);\n", sx(arg).c_str());
            else
              out_ += indent + strfmt("  std::printf(\"%%llu\", (unsigned long long)%s);\n",
                                      name(arg).c_str());
            break;
          case 'x':
            out_ += indent + strfmt("  std::printf(\"%%llx\", (unsigned long long)%s);\n",
                                    name(arg).c_str());
            break;
          case 'b':
            out_ += indent + strfmt("  printBin_(%s, %u);\n", name(arg).c_str(), width(arg));
            break;
          case 'c':
            out_ += indent + strfmt("  std::putchar((int)(%s & 0xff));\n", name(arg).c_str());
            break;
          default:
            lit += '%';
            lit += f;
            break;
        }
      }
      flushLit();
      out_ += indent + "}\n";
    }
    for (const auto& st : ir_.stops) {
      out_ += indent + strfmt("if (%s && !stopped_)%s { stopped_ = true; exit_code_ = %d; }\n",
                              name(st.en).c_str(), hint, st.exitCode);
    }
    for (const auto& a : ir_.asserts) {
      std::string msg;
      for (char c : a.message) {
        if (c == '\n') msg += "\\n";
        else if (c == '"') msg += "\\\"";
        else if (c == '\\') msg += "\\\\";
        else if (c == '%') msg += "%%";
        else msg += c;
      }
      out_ += indent + strfmt("if (%s && !%s && !stopped_)%s { std::printf(\"assertion "
                              "failed: %s\\n\"); stopped_ = true; exit_code_ = 65; }\n",
                              name(a.en).c_str(), name(a.pred).c_str(), hint, msg.c_str());
    }
  }

  // One partition function; `sig` is the full signature (in-class or
  // out-of-line qualified), `ind` the body indentation, `close` the line
  // ending the definition.
  void emitPartitionFunction(size_t pos, const std::string& sig, const std::string& ind,
                             const std::string& close) {
    const auto& part = sched_->parts[pos];
    out_ += sig + " {\n";
    out_ += ind + strfmt("act_[%zu] = false;\n", pos);
    for (size_t oi = 0; oi < part.outputs.size(); oi++)
      out_ += ind + strfmt("const uint64_t old%zu_ = %s;\n", oi,
                           name(part.outputs[oi].sig).c_str());
    emitOpSeq(part.ops, ind);
    for (const auto& rw : part.regWrites) emitRegWrite(rw.regIdx, &rw.wakeParts, ind);
    for (const auto& mw : part.memWrites)
      emitMemWrite(mw.memIdx, mw.writerIdx, &mw.wakeParts, ind);
    for (size_t oi = 0; oi < part.outputs.size(); oi++) {
      const auto& o = part.outputs[oi];
      // Branchless OR-reduction trigger (Figure 1).
      out_ += ind + strfmt("{ const bool ch%zu_ = old%zu_ != %s;\n", oi, oi,
                           name(o.sig).c_str());
      for (int32_t c : o.consumers) out_ += ind + strfmt("  act_[%d] |= ch%zu_;\n", c, oi);
      out_ += ind + "}\n";
    }
    out_ += close;
  }

  void emitPartitionFunctions() {
    for (size_t pos = 0; pos < sched_->parts.size(); pos++)
      emitPartitionFunction(pos, strfmt("  void part_%zu()", pos), "    ", "  }\n");
    out_ += "\n";
  }

  void emitInputSweep(const std::string& ind) {
    for (size_t i = 0; i < ir_.inputs.size(); i++) {
      int32_t in = ir_.inputs[i];
      out_ += ind + strfmt("if (first_cycle_ || %s != prev_%s) {\n", name(in).c_str(),
                           name(in).c_str());
      for (int32_t p : sched_->inputConsumers[i]) out_ += ind + strfmt("  act_[%d] = true;\n", p);
      out_ += ind + strfmt("  prev_%s = %s;\n", name(in).c_str(), name(in).c_str());
      out_ += ind + "}\n";
    }
  }

  void emitEval() {
    out_ += "  // Advances one clock cycle (combinational settle + side effects +\n";
    out_ += "  // state update).\n";
    out_ += "  void eval() {\n";
    if (!opts_.ccss) {
      std::vector<int32_t> all(ir_.ops.size());
      for (size_t i = 0; i < all.size(); i++) all[i] = static_cast<int32_t>(i);
      emitOpSeq(all, "    ");
      emitPrintsAndStops("    ");
      for (size_t r = 0; r < ir_.regs.size(); r++)
        emitRegWrite(static_cast<int32_t>(r), nullptr, "    ");
      for (size_t m = 0; m < ir_.mems.size(); m++)
        for (size_t w = 0; w < ir_.mems[m].writers.size(); w++)
          emitMemWrite(static_cast<int32_t>(m), static_cast<int32_t>(w), nullptr, "    ");
    } else {
      out_ += "    // 1. external input change detection\n";
      emitInputSweep("    ");
      out_ += "    first_cycle_ = false;\n";
      out_ += "    // 2. singular static partition sweep\n";
      for (size_t pos = 0; pos < sched_->parts.size(); pos++)
        out_ += strfmt("    if (act_[%zu]) part_%zu();\n", pos, pos);
      out_ += "    // 3. side effects\n";
      emitPrintsAndStops("    ");
      out_ += "    // 4. phase 2: non-elided state elements\n";
      for (const auto& rw : sched_->deferredRegs) emitRegWrite(rw.regIdx, &rw.wakeParts, "    ");
      for (const auto& mw : sched_->deferredMemWrites)
        emitMemWrite(mw.memIdx, mw.writerIdx, &mw.wakeParts, "    ");
    }
    out_ += "    cycles_++;\n  }\n";
  }
};

}  // namespace

std::string emitCpp(const SimIR& ir, const CondPartSchedule* schedule,
                    const CodegenOptions& opts) {
  obs::ScopedPhaseTimer phaseTimer("codegen");
  Emitter e(ir, schedule, opts);
  return e.run();
}

ShardedCpp emitCppSharded(const SimIR& ir, const CondPartSchedule* schedule,
                          const CodegenOptions& opts, uint32_t shards,
                          const std::string& base) {
  obs::ScopedPhaseTimer phaseTimer("codegen");
  Emitter e(ir, schedule, opts);
  return e.runSharded(shards, base);
}

std::string memberName(const SimIR& ir, int32_t sig) {
  return buildNames(ir)[static_cast<size_t>(sig)];
}

}  // namespace essent::codegen
