// ESSENT public API — VCD waveform dumping for any Engine.
//
//   #include <essent/vcd.h>
//   std::ofstream out("waves.vcd");
//   essent::sim::VcdWriter vcd(out, *eng);
//   eng->tick();
//   vcd.sample(1);
//
// Compatibility policy: docs/API.md.
#pragma once

#include "sim/vcd.h"                 // VcdWriter
