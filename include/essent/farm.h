// ESSENT public API — the batch simulation farm.
//
// core::SimFarm runs N concurrent engine instances that share ONE compiled
// schedule (see src/core/sim_farm.h for the design notes):
//
//   #include <essent/farm.h>
//   auto design = essent::sim::CompiledDesign::compile(ir);
//   essent::core::FarmOptions fo;                 // kind, workers, knobs
//   essent::core::SimFarm farm(design, fo);
//   std::vector<essent::core::FarmJob> jobs(8);
//   for (auto& j : jobs) j.maxCycles = 10000;
//   essent::core::FarmReport report = farm.run(jobs);
//
// Compatibility policy: docs/API.md.
#pragma once

#include "core/sim_farm.h"           // SimFarm, FarmJob, FarmOptions, FarmReport
#include "sim/engine_factory.h"      // EngineKind, EngineOptions
