// ESSENT public API — everything a simulation run reports:
//
//   sim::EngineStats          per-engine work counters (cycles, ops, ...)
//   sim::RunResult            one harness run (cycles, stop, wall time)
//   sim::runEngine            drive an engine with a stimulus callback
//   sim::compareEngines       lock-step cross-engine equivalence check
//   core::FarmInstanceResult  one farm instance's results
//   core::FarmReport          whole-batch aggregates
//
// Compatibility policy: docs/API.md.
#pragma once

#include "core/sim_farm.h"           // FarmInstanceResult, FarmReport
#include "sim/engine.h"              // EngineStats
#include "sim/harness.h"             // RunResult, runEngine, compareEngines
