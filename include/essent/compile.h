// ESSENT public API — the compile pipeline.
//
// One call takes FIRRTL text through parse, width inference, lowering, IR
// build, and optimization, returning the immutable CompiledDesign that
// sim::makeEngine and core::SimFarm consume:
//
//   #include <essent/compile.h>
//   essent::diag::DiagEngine de;
//   essent::sim::CompileOptions copts;
//   auto design = essent::sim::compileDesign(firrtlText, copts, de);
//   if (!design) { /* inspect de */ }
//
// Everything reachable from this header follows the compatibility policy
// in docs/API.md.
#pragma once

#include "sim/compile.h"  // CompileOptions, compileDesign (+ build layer)
