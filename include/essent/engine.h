// ESSENT public API — engine construction and simulation.
//
// This is the stable entry point for embedding the simulator: compile a
// design once (sim::compileDesign, see <essent/compile.h>), then construct
// any number of engines from it with sim::makeEngine. Everything
// reachable from the include/essent/ headers follows the compatibility
// policy in docs/API.md; internal headers (src/**) may change freely
// between releases.
//
//   #include <essent/compile.h>
//   #include <essent/engine.h>
//   auto design = essent::sim::compileDesign(firrtlText);
//   auto eng = essent::sim::makeEngine(essent::sim::EngineKind::Ccss, design);
//   eng->poke("en", 1);
//   eng->tick();
#pragma once

#include "core/activity_engine.h"    // ActivityEngine (CCSS) + CompiledCcss
#include "core/lane_engine.h"        // LaneEngine + LaneBroadcastEngine (SIMD lanes)
#include "core/parallel_engine.h"    // ParallelActivityEngine + makeCcssEngine
#include "sim/compile.h"             // compileDesign: FIRRTL text -> CompiledDesign
#include "sim/engine.h"              // Engine, CompiledDesign, EngineStats
#include "sim/engine_factory.h"      // EngineKind, EngineOptions, makeEngine
#include "sim/event_driven.h"        // EventDrivenEngine
#include "sim/full_cycle.h"          // FullCycleEngine
