// ESSENT public API — every option struct a client configures:
//
//   sim::CompileOptions   text->CompiledDesign pipeline knobs (build + limits)
//   sim::BuildOptions     FIRRTL lowering + IR optimization knobs
//   sim::EngineOptions    makeEngine knobs (threads, C_p, elision, profiling)
//   core::ScheduleOptions CCSS partitioner/schedule knobs (advanced use;
//                         EngineOptions covers the common subset)
//   core::FarmOptions     batch-farm kind/engine/worker knobs
//
// Compatibility policy: docs/API.md.
#pragma once

#include "core/schedule.h"           // ScheduleOptions (+ PartitionOptions)
#include "core/sim_farm.h"           // FarmOptions
#include "sim/compile.h"             // CompileOptions (+ BuildOptions)
#include "sim/engine_factory.h"      // EngineOptions
